// Command wormsim runs a flit-level wormhole simulation of a synthetic
// workload on a standard topology and prints delivery statistics,
// optionally under an injected fault schedule with a recovery policy.
//
// Examples:
//
//	wormsim -topo mesh -dims 8x8 -alg dor -pattern transpose -rate 0.1 \
//	        -length 8 -duration 500
//	wormsim -topo torus -dims 4x4 -alg dor -mtbf 2000 -repair 30 \
//	        -recovery abort-retry
//	wormsim -topo ring -dims 8 -alg ecube -faults "50:stall:c3:40;200:fail:c7" \
//	        -recovery reroute
//	wormsim -paper figure1 -trace figure1.jsonl
//	wormsim -paper figure1 -trace figure1_waitfor.dot -trace-format dot
//
// With -paper the synthetic workload is replaced by one of the paper's
// fixed scenarios (figure1, figure2, figure3a..f, gen<k>), which makes
// the tracing flags a microscope for the paper's arguments: tracing
// figure1 shows every channel acquisition and wait-for edge of the false
// resource cycle without the full wait-for cycle ever closing.
//
// Exit status: 0 when every message reaches a terminal state (delivered,
// or dropped by the recovery policy), 2 on deadlock, 3 on a cycle-budget
// timeout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/obsv"
	"repro/internal/obsv/manifest"
	"repro/internal/obsv/serve"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	var (
		topo     = flag.String("topo", "mesh", "topology: mesh, torus, ring, uring, hypercube, star, complete")
		dims     = flag.String("dims", "4x4", "dimensions, e.g. 8x8 (grids) or 8 (others)")
		vcs      = flag.Int("vcs", 1, "virtual channels per link (grids)")
		alg      = flag.String("alg", "dor", "routing: dor, negfirst, dallyseitz, ecube, bfs, valiant, valiantsplit, hub, fulladaptive, westfirst, duato")
		pattern  = flag.String("pattern", "uniform", "traffic: "+cli.PatternNames)
		rate     = flag.Float64("rate", 0.05, "per-node per-cycle injection probability")
		length   = flag.Int("length", 8, "message length in flits")
		duration = flag.Int("duration", 200, "injection window in cycles")
		seed     = flag.Int64("seed", 1, "workload seed")
		depth    = flag.Int("bufdepth", 1, "flit buffer depth per channel")
		maxCyc   = flag.Int("maxcycles", 1_000_000, "simulation cycle budget")

		faults    = flag.String("faults", "", "planned fault schedule: cycle:kind:target[:duration] events joined by ';' (kinds: fail, stall, router, freeze)")
		mtbf      = flag.Float64("mtbf", 0, "generate random faults: mean cycles between faults per channel (0 = none)")
		repair    = flag.Float64("repair", 25, "mean repair time of generated transient faults, in cycles")
		permfrac  = flag.Float64("permfrac", 0, "fraction of generated channel faults that are permanent")
		faultseed = flag.Int64("faultseed", 1, "fault generation seed")
		recovery  = flag.String("recovery", "", "recovery policy: abort-retry, drop, reroute (empty = detect only)")
		paper     = flag.String("paper", "", "run a paper scenario instead of a synthetic workload: figure1, figure2, figure3a..f, gen<k>")
	)
	obsvF := cli.RegisterObsvFlags()
	flag.Parse()

	var (
		net    *topology.Network
		grid   *topology.Grid
		oblAlg routing.Algorithm
		name   string
		msgs   []sim.MessageSpec
		cfg    sim.Config
		err    error
	)
	if *paper != "" {
		pn, perr := cli.PaperNet(*paper)
		if perr != nil {
			log.Fatal(perr)
		}
		sc := pn.Scenario
		net, oblAlg, name, msgs, cfg = sc.Net, pn.Alg, sc.Name, sc.Msgs, sc.Cfg
		if *depth > 1 {
			cfg.BufferDepth = *depth
		}
	} else if cli.AdaptiveNames[*alg] {
		a, g, berr := cli.BuildAdaptive(*topo, *alg, *dims, *vcs)
		if berr != nil {
			log.Fatal(berr)
		}
		net, grid, name = a.Net, g, a.Name+" (adaptive)"
		pat, perr := cli.BuildPattern(*pattern, net, grid, *seed)
		if perr != nil {
			log.Fatal(perr)
		}
		w := traffic.AdaptiveWorkload{Alg: a, Pattern: pat, Rate: *rate, Length: *length, Duration: *duration, Seed: *seed}
		msgs, err = w.Messages()
	} else {
		a, g, berr := cli.Build(*topo, *alg, *dims, *vcs)
		if berr != nil {
			log.Fatal(berr)
		}
		oblAlg, net, grid, name = a, a.Network(), g, a.Name()
		pat, perr := cli.BuildPattern(*pattern, net, grid, *seed)
		if perr != nil {
			log.Fatal(perr)
		}
		w := traffic.Workload{Alg: a, Pattern: pat, Rate: *rate, Length: *length, Duration: *duration, Seed: *seed}
		msgs, err = w.Messages()
	}
	if err != nil {
		log.Fatal(err)
	}
	if *paper == "" {
		cfg = sim.Config{BufferDepth: *depth}
	}

	obs, err := obsvF.Open(name, cli.ChannelLanes(net))
	if err != nil {
		log.Fatal(err)
	}

	s := sim.New(net, cfg)
	col, rec := obs.NewTelemetry(net)
	if col != nil {
		s.SetTelemetry(col)
	}
	tracer := obs.Tracer
	if rec != nil {
		tracer = obsv.Multi{obs.Tracer, rec}
	}
	s.SetTracer(tracer)
	for _, m := range msgs {
		if _, err := s.Add(m); err != nil {
			log.Fatal(err)
		}
	}

	sch, err := fault.Parse(*faults)
	if err != nil {
		log.Fatal(err)
	}
	if *mtbf > 0 {
		gen, err := fault.Generate(net, fault.GenParams{
			Seed: *faultseed, Horizon: *duration, MTBF: *mtbf,
			MeanRepair: *repair, PermanentFraction: *permfrac,
		})
		if err != nil {
			log.Fatal(err)
		}
		sch.Events = append(sch.Events, gen.Events...)
		sch = sch.Sorted()
	}
	if err := sch.Validate(net, len(msgs)); err != nil {
		log.Fatal(err)
	}

	// Live campaign heartbeats for -serve: the runner's wall-clock
	// telemetry feeds the /progress endpoint, never the report.
	var heartbeat func(fault.Heartbeat)
	if obs.Server != nil {
		heartbeat = func(h fault.Heartbeat) {
			obs.Publish(serve.Snapshot{
				Source: "campaign", Name: name,
				Cycle: h.Cycle, Messages: h.Messages, Delivered: h.Delivered, Dropped: h.Dropped,
				Faults: h.FaultsInjected, Interventions: h.Interventions,
				ElapsedMS: h.Elapsed.Milliseconds(),
			})
		}
	}

	var (
		out sim.Outcome
		rep *fault.Report
	)
	if *recovery != "" {
		pol, err := fault.ParsePolicy(*recovery)
		if err != nil {
			log.Fatal(err)
		}
		r := fault.Runner{Sim: s, Schedule: sch, Recovery: fault.DefaultRecovery(pol), Alg: oblAlg, Tracer: tracer, Progress: heartbeat}
		rr := r.Run(*maxCyc)
		rep, out = &rr, rr.Outcome
	} else {
		if len(sch.Events) > 0 {
			r := fault.Runner{Sim: s, Schedule: sch, Recovery: fault.RecoveryConfig{
				// Detect-only: a timeout longer than the budget means the
				// watchdog never intervenes; the run reports what happened.
				Policy: fault.Drop, Watchdog: fault.Watchdog{CheckEvery: 8, Timeout: *maxCyc + 1},
			}, Tracer: tracer, Progress: heartbeat}
			rr := r.Run(*maxCyc)
			rep, out = &rr, rr.Outcome
		} else {
			out = s.Run(*maxCyc)
		}
	}
	stats := sim.Collect(s)
	obs.Publish(serve.Snapshot{
		Source: "campaign", Name: name, Cycle: stats.Cycles,
		Messages: stats.Messages, Delivered: stats.Delivered, Dropped: stats.Dropped,
		Done: true, Verdict: out.Result.String(),
	})
	run := manifest.Run{
		Name: name, TopologyHash: manifest.TopologyHash(net),
		Verdict: out.Result.String(),
	}
	if *paper != "" {
		run.Scenario = name
	}
	run.Telemetry = cli.TelemetrySummary(col, nil)
	// The flight recorder dumps only when something went wrong: a global
	// deadlock or timeout verdict, or a watchdog liveness classification.
	reason := ""
	switch out.Result {
	case sim.ResultDeadlock:
		reason = "deadlock"
	case sim.ResultTimeout:
		reason = "timeout"
	}
	if reason == "" && rep != nil {
		switch {
		case rep.LocalDeadlocks > 0:
			reason = "local-deadlock"
		case rep.Livelocks > 0:
			reason = "livelock"
		case rep.Starvations > 0:
			reason = "starvation"
		}
	}
	if reason != "" {
		obs.DumpFlight(rec, "", reason)
	}
	obs.RecordRun(run)
	if err := obs.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network:    %s (%d nodes, %d channels)\n", net.Name(), net.NumNodes(), net.NumChannels())
	fmt.Printf("routing:    %s\n", name)
	fmt.Printf("outcome:    %s after %d cycles\n", out.Result, stats.Cycles)
	fmt.Printf("messages:   %d delivered of %d", stats.Delivered, stats.Messages)
	if stats.Dropped > 0 || stats.Retries > 0 {
		fmt.Printf(" (%d dropped, %d retries)", stats.Dropped, stats.Retries)
	}
	fmt.Println()
	fmt.Printf("latency:    avg %.2f p50 %d p95 %d p99 %d max %d cycles\n",
		stats.AvgLatency, stats.P50Latency, stats.P95Latency, stats.P99Latency, stats.MaxLatency)
	fmt.Printf("throughput: %.3f flits/cycle\n", stats.Throughput)
	if ts := run.Telemetry; ts != nil && ts.Samples > 0 {
		fmt.Printf("telemetry:  %d frames / %d samples (stride %d), mean util %.3f, hottest c%d (util %.3f, %d blocked samples)\n",
			ts.Frames, ts.Samples, ts.Stride, ts.MeanUtil, ts.HottestChannel, ts.HottestUtil, ts.HottestBlocked)
	}
	if rep != nil {
		fmt.Printf("faults:     %d injected, %d interventions (%d retries, %d reroutes, %d drops)\n",
			rep.FaultsInjected, rep.Interventions, rep.AbortRetries, rep.Reroutes, rep.Drops)
		fmt.Printf("watchdog:   %d exact deadlocks, %d timeout suspicions, mean recovery latency %.1f cycles\n",
			rep.DeadlocksDetected, rep.TimeoutSuspicions, rep.MeanRecoveryLatency)
		for _, w := range rep.Warnings {
			fmt.Printf("warning:    %s\n", w)
		}
	}
	switch out.Result {
	case sim.ResultDeadlock:
		fmt.Printf("undelivered messages: %v\n", out.Undelivered)
		os.Exit(2)
	case sim.ResultTimeout:
		fmt.Printf("undelivered messages: %v\n", out.Undelivered)
		os.Exit(3)
	}
}
