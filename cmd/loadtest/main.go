// Command loadtest sweeps offered load over a rate grid for a (topology,
// routing) pair and emits a deterministic JSON latency-throughput
// saturation curve: accepted throughput and queueing-inclusive p50/p95/p99
// latency per offered rate, with the saturation point detected. This is
// the standard open-loop evaluation of the interconnection-network
// literature, driven by the flit-level wormhole simulator.
//
// Examples:
//
//	loadtest -topo mesh -dims 8x8 -alg dor -pattern uniform \
//	         -rates 0.02:0.30:0.02 -length 8
//	loadtest -topo mesh -dims 4x4 -alg dor -pattern transpose \
//	         -arrivals bursty -burstlen 16 -peak 4 -o curve.json
//	loadtest -topo ring -dims 8 -alg bfs -rates 0.05,0.2,0.5 -workers 4
//
// The JSON artifact is byte-for-byte reproducible for a fixed flag set,
// regardless of -workers: points are computed in parallel but emitted in
// rate order, and every point's RNG is seeded from (seed, point index).
//
// Exit status: 0 on success, 1 on configuration errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cli"
	"repro/internal/obsv/manifest"
	"repro/internal/obsv/serve"
	"repro/internal/obsv/telemetry"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// point is one row of the emitted curve. Field order is the JSON order;
// keep integers where determinism is delicate (cycle counts, flits) and
// floats only for derived ratios.
type point struct {
	Rate         float64 `json:"rate"`
	OfferedFlits float64 `json:"offered_flits_per_node_cycle"`
	MeasOffered  int64   `json:"offered_flits_measured"`
	MeasAccepted int64   `json:"accepted_flits_measured"`
	Throughput   float64 `json:"accepted_flits_per_node_cycle"`
	// AcceptedFraction is accepted/offered over the measure window (1
	// when nothing was offered); Divergence is its complement — the
	// per-point saturation signal, 0 below saturation and growing as
	// source queues build.
	AcceptedFraction float64 `json:"accepted_fraction"`
	Divergence       float64 `json:"offered_accepted_divergence"`
	Generated        int     `json:"generated"`
	Injected         int     `json:"injected"`
	Delivered        int     `json:"delivered"`
	Backlog          int     `json:"backlog"`
	Cycles           int     `json:"cycles"`
	Samples          int     `json:"latency_samples"`
	AvgLatency       float64 `json:"avg_latency"`
	P50              int     `json:"p50_latency"`
	P95              int     `json:"p95_latency"`
	P99              int     `json:"p99_latency"`
	Max              int     `json:"max_latency"`
	Saturated        bool    `json:"saturated"`
	Deadlocked       bool    `json:"deadlocked,omitempty"`
	DeadlockCycle    int     `json:"deadlock_cycle,omitempty"`
	// SourceAccepted is the per-source accepted-flit series (measure
	// window, delivered messages), emitted with -persource.
	SourceAccepted []int64 `json:"source_accepted,omitempty"`
	// Telemetry summarizes the point's channel telemetry when -telemetry
	// or -flight-recorder is on.
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
	// SLO is the per-source latency-SLO evaluation for this rate cell,
	// present with -slo.
	SLO *telemetry.SLOReport `json:"slo,omitempty"`
}

// curve is the whole JSON artifact.
type curve struct {
	Network        string  `json:"network"`
	Routing        string  `json:"routing"`
	Pattern        string  `json:"pattern"`
	Arrivals       string  `json:"arrivals"`
	Length         int     `json:"length_flits"`
	BufferDepth    int     `json:"buffer_depth"`
	Warmup         int     `json:"warmup_cycles"`
	Measure        int     `json:"measure_cycles"`
	Drain          int     `json:"drain_cycles"`
	Seed           int64   `json:"seed"`
	SLOSpec        string  `json:"slo_spec,omitempty"`
	SaturationRate float64 `json:"saturation_rate,omitempty"`
	Points         []point `json:"points"`
}

func main() {
	var (
		topo      = flag.String("topo", "mesh", "topology: mesh, torus, ring, uring, hypercube, star, complete")
		dims      = flag.String("dims", "8x8", "dimensions, e.g. 8x8 (grids) or 8 (others)")
		vcs       = flag.Int("vcs", 1, "virtual channels per link (grids)")
		alg       = flag.String("alg", "dor", "routing: dor, negfirst, dallyseitz, ecube, bfs, valiant, valiantsplit, hub")
		pattern   = flag.String("pattern", "uniform", "traffic: "+cli.PatternNames)
		rates     = flag.String("rates", "0.02:0.20:0.02", "offered-rate grid: lo:hi:step, or a comma list like 0.05,0.1,0.2")
		arrivals  = flag.String("arrivals", "bernoulli", "arrival process: bernoulli, bursty")
		burstlen  = flag.Float64("burstlen", 16, "bursty: mean burst length in cycles")
		peak      = flag.Float64("peak", 4, "bursty: ON-phase rate multiplier (> 1)")
		length    = flag.Int("length", 8, "message length in flits")
		depth     = flag.Int("bufdepth", 1, "flit buffer depth per channel")
		warmup    = flag.Int("warmup", 500, "warmup cycles before the measurement window")
		measure   = flag.Int("measure", 2000, "measurement window in cycles")
		drain     = flag.Int("drain", 20000, "max cycles to drain in-flight traffic after the window")
		seed      = flag.Int64("seed", 1, "base seed; point i runs with a seed derived from (seed, i)")
		workers   = flag.Int("workers", 1, "rate points computed in parallel (output is identical for any value)")
		perSource = flag.Bool("persource", false, "include the per-source accepted-flit series in each point")
		sloSpec   = flag.String("slo", "", "latency SLOs evaluated per rate cell against per-source sketches, e.g. \"p99<=500\" or \"p50<=120,p99<=800\"")
		outPath   = flag.String("o", "", "write the JSON curve here (default stdout)")
	)
	obsvF := cli.RegisterObsvFlags()
	flag.Parse()

	a, grid, err := cli.Build(*topo, *alg, *dims, *vcs)
	if err != nil {
		log.Fatal(err)
	}
	net := a.Network()
	pat, err := cli.BuildPattern(*pattern, net, grid, *seed)
	if err != nil {
		log.Fatal(err)
	}
	grid_, err := parseRates(*rates)
	if err != nil {
		log.Fatal(err)
	}

	factoryFor := func(rate float64) traffic.Factory {
		switch *arrivals {
		case "bernoulli":
			return traffic.Bernoulli(rate)
		case "bursty":
			return traffic.Bursty(rate, *burstlen, *peak)
		}
		log.Fatalf("loadtest: unknown arrival process %q (want bernoulli, bursty)", *arrivals)
		return traffic.Factory{}
	}
	// Resolve once so a bad process name fails before the sweep.
	factoryFor(grid_[0])
	var sloObjs []telemetry.SLOObjective
	if *sloSpec != "" {
		if sloObjs, err = telemetry.ParseSLO(*sloSpec); err != nil {
			log.Fatal(err)
		}
	}

	name := fmt.Sprintf("loadtest %s %s %s", net.Name(), a.Name(), *pattern)
	obs, err := obsvF.Open(name, cli.ChannelLanes(net))
	if err != nil {
		log.Fatal(err)
	}

	points := make([]point, len(grid_))
	errs := make([]error, len(grid_))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, *workers))
	for i, rate := range grid_ {
		wg.Add(1)
		go func(i int, rate float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Each point gets its own collector/recorder: points run in
			// parallel, and telemetry frames must depend only on the
			// point's own deterministic simulation.
			col, rec := obs.NewTelemetry(net)
			l := traffic.Load{
				Alg: a, Pattern: pat, Arrivals: factoryFor(rate),
				Length: *length, Warmup: *warmup, Measure: *measure, Drain: *drain,
				// Decorrelate points without coupling them to worker
				// scheduling: the seed depends only on the grid index.
				Seed:      *seed + int64(i)*1_000_003,
				Config:    sim.Config{BufferDepth: *depth},
				Telemetry: col,
			}
			if rec != nil {
				l.Tracer = rec
			}
			if sloObjs != nil {
				l.Bank = telemetry.NewBank(net.NumNodes())
			}
			r, err := l.Run()
			if err != nil {
				errs[i] = err
				return
			}
			offered := rate * float64(*length)
			p := point{
				Rate: rate, OfferedFlits: offered,
				MeasOffered: r.OfferedFlits, MeasAccepted: r.AcceptedFlits,
				Throughput:       r.Throughput,
				AcceptedFraction: 1, // offered == 0 accepts everything there was
				Generated:        r.Generated, Injected: r.Injected, Delivered: r.Delivered,
				Backlog: r.Backlog, Cycles: r.Cycles,
				Samples: r.LatencySamples, AvgLatency: r.AvgLatency,
				P50: r.P50Latency, P95: r.P95Latency, P99: r.P99Latency, Max: r.MaxLatency,
				Deadlocked: r.Deadlocked, DeadlockCycle: r.DeadlockCycle,
			}
			if r.OfferedFlits > 0 {
				p.AcceptedFraction = float64(r.AcceptedFlits) / float64(r.OfferedFlits)
				p.Divergence = 1 - p.AcceptedFraction
			}
			if *perSource {
				p.SourceAccepted = r.SourceAccepted
			}
			p.Telemetry = cli.TelemetrySummary(col, r.Latency)
			if sloObjs != nil {
				p.SLO = l.Bank.Evaluate(sloObjs)
				if rec != nil {
					rec.SetSLO(p.SLO.AppendJSON(nil))
				}
				obs.PublishSLO(p.SLO)
			}
			// Saturated: the network deadlocked, or it accepted measurably
			// less than was actually offered during the window (the source
			// queues grow without bound past saturation).
			p.Saturated = r.Deadlocked ||
				(r.OfferedFlits > 0 && float64(r.AcceptedFlits) < 0.90*float64(r.OfferedFlits))
			if p.Saturated {
				reason := "saturated"
				if r.Deadlocked {
					reason = "deadlock"
				}
				obs.DumpFlight(rec, fmt.Sprintf("rate-%g", rate), reason)
			}
			points[i] = p
			obs.Publish(serve.Snapshot{
				Source: "loadtest", Name: name, Cycle: r.Cycles,
				Messages: r.Generated, Delivered: r.Delivered,
				Verdict: fmt.Sprintf("rate %.3g done", rate),
			})
		}(i, rate)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	c := curve{
		Network: net.Name(), Routing: a.Name(), Pattern: *pattern, Arrivals: *arrivals,
		Length: *length, BufferDepth: *depth,
		Warmup: *warmup, Measure: *measure, Drain: *drain, Seed: *seed,
		SLOSpec: *sloSpec,
		Points:  points,
	}
	for _, p := range points {
		if p.Saturated {
			c.SaturationRate = p.Rate
			break
		}
	}

	buf, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		os.Stdout.Write(buf)
	}

	verdict := "no-saturation"
	if c.SaturationRate > 0 {
		verdict = fmt.Sprintf("saturates at %.3g", c.SaturationRate)
	}
	sloViolations := 0
	for _, p := range points {
		if p.SLO != nil {
			sloViolations += p.SLO.Violations
		}
	}
	if sloObjs != nil && sloViolations > 0 {
		verdict += fmt.Sprintf(", %d SLO violation(s)", sloViolations)
	}
	obs.Publish(serve.Snapshot{
		Source: "loadtest", Name: name, Done: true, Verdict: verdict,
	})
	run := manifest.Run{
		Name: name, TopologyHash: manifest.TopologyHash(net), Verdict: verdict,
	}
	// The manifest carries the telemetry of the most interesting point:
	// the saturation point when one exists, else the highest rate swept.
	for _, p := range points {
		if p.Telemetry == nil && p.SLO == nil {
			continue
		}
		run.Telemetry = p.Telemetry
		run.SLO = p.SLO
		if p.Saturated {
			break
		}
	}
	obs.RecordRun(run)
	if err := obs.Close(); err != nil {
		log.Fatal(err)
	}
}

// parseRates parses "lo:hi:step" grids and "a,b,c" lists. Grid points are
// computed by integer multiples of the step so the list is identical
// however it's later split across workers.
func parseRates(s string) ([]float64, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("loadtest: -rates grid must be lo:hi:step, got %q", s)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		step, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || step <= 0 || hi < lo {
			return nil, fmt.Errorf("loadtest: bad -rates grid %q", s)
		}
		var out []float64
		for i := 0; ; i++ {
			// Round each grid point so accumulated float error never leaks
			// into the artifact (0.06, not 0.060000000000000005).
			r := math.Round((lo+float64(i)*step)*1e9) / 1e9
			if r > hi+step/1e9 {
				break
			}
			out = append(out, r)
		}
		return out, nil
	}
	var out []float64
	for _, p := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || r <= 0 || r > 1 {
			return nil, fmt.Errorf("loadtest: bad rate %q in %q", p, s)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadtest: empty rate list %q", s)
	}
	return out, nil
}
