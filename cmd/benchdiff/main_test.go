package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obsv/manifest"
)

func writeBench(t *testing.T, dir, name, blob string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseBench = `{
  "go_max_procs": 4,
  "search_workers": 4,
  "benchmarks": [
    {"name": "E1_Figure1_Search", "ns_per_op": 2000000, "allocs_per_op": 9000, "bytes_per_op": 1000000, "states": 2996, "states_per_sec": 1498000, "verdict": "no-deadlock"},
    {"name": "EncodeTo", "ns_per_op": 120, "allocs_per_op": 0, "bytes_per_op": 0}
  ]
}`

func TestIdenticalInputsPass(t *testing.T) {
	dir := t.TempDir()
	a := writeBench(t, dir, "a.json", baseBench)
	old, err := loadPoints(a)
	if err != nil {
		t.Fatal(err)
	}
	rows := diff(old, old, 0.2, 0.05)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.regressed || r.status != "ok" {
			t.Errorf("identical inputs flagged: %+v", r)
		}
	}
}

func TestThroughputRegressionDetected(t *testing.T) {
	dir := t.TempDir()
	slower := strings.Replace(baseBench, `"states_per_sec": 1498000`, `"states_per_sec": 749000`, 1)
	old, err := loadPoints(writeBench(t, dir, "old.json", baseBench))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := loadPoints(writeBench(t, dir, "new.json", slower))
	if err != nil {
		t.Fatal(err)
	}
	// A 2x slowdown must trip even a generous 40% tolerance...
	rows := diff(old, cur, 0.4, 0.05)
	var hit bool
	for _, r := range rows {
		if r.name == "E1_Figure1_Search" && r.regressed {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("2x states/sec drop not flagged: %+v", rows)
	}
	// ...and pass a tolerance that explicitly allows halving.
	for _, r := range diff(old, cur, 0.6, 0.05) {
		if r.regressed {
			t.Errorf("drop within tolerance flagged: %+v", r)
		}
	}
}

func TestAllocationRegressionDetected(t *testing.T) {
	dir := t.TempDir()
	// EncodeTo gaining a single allocation must regress regardless of
	// tolerance (0 -> 1 has no finite fractional increase).
	leaky := strings.Replace(baseBench, `"name": "EncodeTo", "ns_per_op": 120, "allocs_per_op": 0`,
		`"name": "EncodeTo", "ns_per_op": 120, "allocs_per_op": 1`, 1)
	old, err := loadPoints(writeBench(t, dir, "old.json", baseBench))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := loadPoints(writeBench(t, dir, "new.json", leaky))
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, r := range diff(old, cur, 0.2, 10.0) {
		if r.name == "EncodeTo" && r.regressed {
			hit = true
		}
	}
	if !hit {
		t.Fatal("zero-alloc row gaining an allocation not flagged")
	}

	// A 20% alloc increase on a nonzero row trips a 5% tolerance and
	// passes a 30% one.
	grown := strings.Replace(baseBench, `"allocs_per_op": 9000`, `"allocs_per_op": 10800`, 1)
	cur2, err := loadPoints(writeBench(t, dir, "new2.json", grown))
	if err != nil {
		t.Fatal(err)
	}
	var tight, loose bool
	for _, r := range diff(old, cur2, 0.2, 0.05) {
		tight = tight || r.regressed
	}
	for _, r := range diff(old, cur2, 0.2, 0.30) {
		loose = loose || r.regressed
	}
	if !tight || loose {
		t.Fatalf("alloc tolerance misapplied: tight=%v loose=%v", tight, loose)
	}
}

func TestAddedAndRemovedRowsAreNotRegressions(t *testing.T) {
	dir := t.TempDir()
	extra := strings.Replace(baseBench, `    {"name": "EncodeTo"`,
		`    {"name": "Gen9_Stall9", "ns_per_op": 5, "allocs_per_op": 1, "states": 10, "states_per_sec": 100},
    {"name": "EncodeTo"`, 1)
	old, err := loadPoints(writeBench(t, dir, "old.json", baseBench))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := loadPoints(writeBench(t, dir, "new.json", extra))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range diff(old, cur, 0.2, 0.05) {
		if r.regressed {
			t.Errorf("added row treated as regression: %+v", r)
		}
		if r.name == "Gen9_Stall9" && r.status != "added" {
			t.Errorf("status = %q, want added", r.status)
		}
	}
	for _, r := range diff(cur, old, 0.2, 0.05) {
		if r.name == "Gen9_Stall9" && (r.status != "removed" || r.regressed) {
			t.Errorf("removed row: %+v", r)
		}
	}
}

func TestLoadPointsFromManifestDir(t *testing.T) {
	dir := t.TempDir()
	b := manifest.NewBuilder(filepath.Join(dir, "run1.json"), "benchjson", nil)
	b.AddRun(manifest.Run{Name: "E1_Figure1_Search", States: 2996, StatesPerSec: 1_400_000, NsPerOp: 2_100_000, AllocsPerOp: 9100})
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	pts, err := loadPoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := pts["E1_Figure1_Search"]
	if !ok || p.StatesPerSec != 1_400_000 || !p.HasAllocs {
		t.Fatalf("points = %+v", pts)
	}

	// Cross-kind comparison: manifest dir vs benchjson file.
	old, err := loadPoints(writeBench(t, t.TempDir(), "bench.json", baseBench))
	if err != nil {
		t.Fatal(err)
	}
	rows := diff(old, pts, 0.2, 0.05)
	var compared bool
	for _, r := range rows {
		if r.name == "E1_Figure1_Search" && r.status == "ok" {
			compared = true
		}
	}
	if !compared {
		t.Fatalf("manifest row not compared against bench row: %+v", rows)
	}
}

func TestRenderMarkdownShape(t *testing.T) {
	old, _ := loadPoints(writeBench(t, t.TempDir(), "b.json", baseBench))
	rows := diff(old, old, 0.2, 0.05)
	var sb strings.Builder
	renderMarkdown(&sb, rows)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+len(rows) {
		t.Fatalf("markdown lines = %d, want header+separator+%d rows:\n%s", len(lines), len(rows), out)
	}
	if !strings.HasPrefix(lines[0], "| benchmark |") || !strings.Contains(out, "| E1_Figure1_Search |") {
		t.Errorf("table shape:\n%s", out)
	}
}
