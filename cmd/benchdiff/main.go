// Command benchdiff compares two performance artifacts and fails on
// regression, turning BENCH_mcheck.json (and the run manifests of
// internal/obsv/manifest) from a diffable record into an enforced
// contract. Each input is either a benchjson output file or a directory
// of run-manifest JSONs; rows are matched by benchmark name.
//
// Two columns are guarded: states/sec (throughput; a drop beyond
// -tolerance is a regression) and allocs/op (allocation discipline; an
// increase beyond -alloc-tolerance is a regression — including any
// allocation appearing on a previously allocation-free row, which is how
// the EncodeTo zero-alloc invariant stays pinned). The comparison prints
// as a markdown table, and the exit status is 1 iff at least one row
// regressed, so CI can gate on it directly.
//
// Rows named in -pin must additionally measure exactly 0 allocs/op in the
// NEW artifact, whatever the old side says — the guard that keeps the
// steady-state simulator rows allocation-free even across baseline
// regenerations (a zero-alloc baseline row going nonzero already fails
// without -pin).
//
// Rows named in -require must be present in the NEW artifact — the guard
// that keeps a benchmark (and the code path it asserts, like the
// out-of-core E10 row) from silently dropping out of the suite, since a
// row missing from NEW otherwise just renders as "removed".
//
//	benchdiff BENCH_mcheck.json BENCH_ci.json
//	benchdiff -tolerance 0.5 baseline/ candidate/
//	benchdiff -pin E7_SimThroughput,EncodeTo BENCH_mcheck.json BENCH_ci.json
//	benchdiff -require E10_SearchOutOfCore BENCH_mcheck.json BENCH_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obsv/manifest"
)

// point is one benchmark row's guarded numbers, from either input kind.
type point struct {
	StatesPerSec int64
	AllocsPerOp  int64
	NsPerOp      int64
	States       int
	// HasAllocs distinguishes a measured 0 allocs/op from a row (e.g. a
	// search manifest entry) that never measured allocations.
	HasAllocs bool
}

// benchFile mirrors cmd/benchjson's output document.
type benchFile struct {
	Entries []struct {
		Name         string `json:"name"`
		NsPerOp      int64  `json:"ns_per_op"`
		AllocsPerOp  int64  `json:"allocs_per_op"`
		States       int    `json:"states"`
		StatesPerSec int64  `json:"states_per_sec"`
	} `json:"benchmarks"`
}

// loadPoints reads one comparison side: a benchjson file, a single run
// manifest, or a directory of run manifests.
func loadPoints(path string) (map[string]point, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	points := make(map[string]point)
	addRun := func(r manifest.Run) {
		points[r.Name] = point{
			StatesPerSec: r.StatesPerSec,
			AllocsPerOp:  r.AllocsPerOp,
			NsPerOp:      r.NsPerOp,
			States:       r.States,
			HasAllocs:    r.NsPerOp > 0, // benchmark rows carry timings; search-only rows don't
		}
	}
	if fi.IsDir() {
		ms, err := manifest.LoadDir(path)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			for _, r := range m.Runs {
				addRun(r)
			}
		}
		return points, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err == nil && len(bf.Entries) > 0 {
		for _, e := range bf.Entries {
			points[e.Name] = point{
				StatesPerSec: e.StatesPerSec,
				AllocsPerOp:  e.AllocsPerOp,
				NsPerOp:      e.NsPerOp,
				States:       e.States,
				HasAllocs:    true,
			}
		}
		return points, nil
	}
	var m manifest.Manifest
	if err := json.Unmarshal(raw, &m); err != nil || m.Command == "" {
		return nil, fmt.Errorf("benchdiff: %s is neither a benchjson file nor a run manifest", path)
	}
	for _, r := range m.Runs {
		addRun(r)
	}
	return points, nil
}

// row is one rendered comparison line.
type row struct {
	name       string
	old, new_  point
	spsDelta   float64 // fractional change, new/old - 1
	allocDelta float64
	status     string // "ok", "REGRESSION", "added", "removed"
	regressed  bool
}

// diff compares two point sets. tol bounds the allowed fractional
// states/sec drop, allocTol the allowed fractional allocs/op increase.
func diff(old, new_ map[string]point, tol, allocTol float64) []row {
	names := make(map[string]struct{}, len(old)+len(new_))
	for n := range old {
		names[n] = struct{}{}
	}
	for n := range new_ {
		names[n] = struct{}{}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var rows []row
	for _, n := range sorted {
		o, haveOld := old[n]
		c, haveNew := new_[n]
		r := row{name: n, old: o, new_: c, status: "ok"}
		switch {
		case !haveOld:
			r.status = "added"
		case !haveNew:
			r.status = "removed"
		default:
			if o.StatesPerSec > 0 && c.StatesPerSec > 0 {
				r.spsDelta = float64(c.StatesPerSec)/float64(o.StatesPerSec) - 1
				if float64(c.StatesPerSec) < float64(o.StatesPerSec)*(1-tol) {
					r.regressed = true
				}
			}
			if o.HasAllocs && c.HasAllocs {
				switch {
				case o.AllocsPerOp == 0 && c.AllocsPerOp > 0:
					// A zero-alloc row growing any allocation is always a
					// regression; no tolerance can excuse it.
					r.regressed = true
					r.allocDelta = 1
				case o.AllocsPerOp > 0:
					r.allocDelta = float64(c.AllocsPerOp)/float64(o.AllocsPerOp) - 1
					if float64(c.AllocsPerOp) > float64(o.AllocsPerOp)*(1+allocTol) {
						r.regressed = true
					}
				}
			}
			if r.regressed {
				r.status = "REGRESSION"
			}
		}
		rows = append(rows, r)
	}
	return rows
}

func fmtCount(v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// renderMarkdown prints the comparison table.
func renderMarkdown(w *strings.Builder, rows []row) {
	fmt.Fprintln(w, "| benchmark | states/sec (old) | states/sec (new) | Δ | allocs/op (old) | allocs/op (new) | Δ | status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---|")
	for _, r := range rows {
		sps, alloc := "-", "-"
		if r.old.StatesPerSec > 0 && r.new_.StatesPerSec > 0 {
			sps = fmt.Sprintf("%+.1f%%", r.spsDelta*100)
		}
		if r.old.HasAllocs && r.new_.HasAllocs {
			alloc = fmt.Sprintf("%+.1f%%", r.allocDelta*100)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s | %s |\n",
			r.name,
			fmtCount(r.old.StatesPerSec), fmtCount(r.new_.StatesPerSec), sps,
			fmtCount(r.old.AllocsPerOp), fmtCount(r.new_.AllocsPerOp), alloc,
			r.status)
	}
}

func main() {
	tol := flag.Float64("tolerance", 0.2, "allowed fractional states/sec drop before a row counts as regressed")
	allocTol := flag.Float64("alloc-tolerance", 0.05, "allowed fractional allocs/op increase before a row counts as regressed")
	pin := flag.String("pin", "", "comma-separated rows that must measure exactly 0 allocs/op in NEW")
	require := flag.String("require", "", "comma-separated rows that must be present in NEW")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD NEW  (each a benchjson file or a manifest directory)")
		os.Exit(2)
	}
	old, err := loadPoints(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := loadPoints(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	rows := diff(old, cur, *tol, *allocTol)
	var sb strings.Builder
	renderMarkdown(&sb, rows)
	os.Stdout.WriteString(sb.String())

	regressed := 0
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := cur[name]; !ok {
				fmt.Fprintf(os.Stderr, "benchdiff: required row %q missing from %s\n", name, flag.Arg(1))
				regressed++
			}
		}
	}
	if *pin != "" {
		for _, name := range strings.Split(*pin, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			p, ok := cur[name]
			switch {
			case !ok:
				fmt.Fprintf(os.Stderr, "benchdiff: pinned row %q missing from %s\n", name, flag.Arg(1))
				regressed++
			case !p.HasAllocs:
				fmt.Fprintf(os.Stderr, "benchdiff: pinned row %q carries no allocation measurement\n", name)
				regressed++
			case p.AllocsPerOp != 0:
				fmt.Fprintf(os.Stderr, "benchdiff: pinned row %q allocates %d allocs/op; must be 0\n", name, p.AllocsPerOp)
				regressed++
			}
		}
	}
	for _, r := range rows {
		if r.regressed {
			regressed++
		}
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond tolerance (states/sec -%.0f%%, allocs/op +%.0f%%)\n",
			regressed, *tol*100, *allocTol*100)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: no regressions across %d row(s)\n", len(rows))
}
