package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cdg"
	"repro/internal/cli"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden compares got against testdata/<name>, rewriting the file under
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output differs from golden file\ngot %d bytes, want %d bytes\n(re-run with -update after verifying the change is intended)",
			name, len(got), len(want))
	}
}

// TestFigure1DOTGolden pins the exact DOT the command emits for the
// paper's Figure 1 network: -dot (the CDG with its 14-channel cycle
// highlighted) and -netdot (the topology). The files are consumed by
// documentation and CI artifacts, so byte-level drift should be a
// conscious decision.
func TestFigure1DOTGolden(t *testing.T) {
	pn, err := cli.PaperNet("figure1")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "figure1_cdg.dot", cdg.New(pn.Alg).DOT())
	golden(t, "figure1_net.dot", pn.Alg.Network().DOT())
}
