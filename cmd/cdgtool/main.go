// Command cdgtool builds the channel dependency graph of a routing
// algorithm, reports its cycle structure, and optionally emits Graphviz
// DOT.
//
// Examples:
//
//	cdgtool -paper figure1
//	cdgtool -topo torus -dims 4x4 -vcs 2 -alg dallyseitz
//	cdgtool -paper figure1 -dot > fig1.dot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cdg"
	"repro/internal/cli"
	"repro/internal/obsv/manifest"
	"repro/internal/routing"
)

func main() {
	var (
		paper  = flag.String("paper", "", "paper network: figure1, figure2, figure3a..f, gen<k>")
		topo   = flag.String("topo", "mesh", "topology (when -paper is empty)")
		dims   = flag.String("dims", "4x4", "dimensions")
		vcs    = flag.Int("vcs", 1, "virtual channels per link")
		algf   = flag.String("alg", "dor", "routing algorithm")
		maxCyc = flag.Int("cycles", 16, "max cycles to enumerate")
		dot    = flag.Bool("dot", false, "emit the CDG as Graphviz DOT to stdout instead of the summary")
		netdot = flag.Bool("netdot", false, "emit the network topology as Graphviz DOT to stdout")
	)
	obsvF := cli.RegisterObsvFlags()
	flag.Parse()

	var alg routing.Algorithm
	if *paper != "" {
		pn, err := cli.PaperNet(*paper)
		if err != nil {
			log.Fatal(err)
		}
		alg = pn.Alg
	} else {
		var err error
		alg, _, err = cli.Build(*topo, *algf, *dims, *vcs)
		if err != nil {
			log.Fatal(err)
		}
	}

	obs, err := obsvF.Open("cdgtool "+alg.Name(), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer obs.Close()

	if *netdot {
		fmt.Fprint(os.Stdout, alg.Network().DOT())
		return
	}
	g := cdg.New(alg)
	acyclic, _ := g.Acyclic()
	sccs := g.SCCs()
	cycles, truncated := g.Cycles(*maxCyc)
	if obs.Metrics != nil {
		obs.Metrics.Gauge("cdg_dependencies").Set(int64(g.NumEdges()))
		obs.Metrics.Gauge("cdg_cycles_found").Set(int64(len(cycles)))
		obs.Metrics.Gauge("cdg_sccs").Set(int64(len(sccs)))
		var acy int64
		if acyclic {
			acy = 1
		}
		obs.Metrics.Gauge("cdg_acyclic").Set(acy)
	}
	obs.RecordRun(manifest.Run{
		Name:         alg.Name(),
		TopologyHash: manifest.TopologyHash(alg.Network()),
	})
	if *dot {
		fmt.Fprint(os.Stdout, g.DOT())
		return
	}
	net := alg.Network()
	fmt.Printf("algorithm: %s\n", alg.Name())
	fmt.Printf("network:   %d nodes, %d channels\n", net.NumNodes(), net.NumChannels())
	fmt.Printf("CDG:       %d dependencies\n", g.NumEdges())
	if acyclic {
		fmt.Println("acyclic:   yes (deadlock-free by Dally-Seitz)")
		return
	}
	fmt.Println("acyclic:   no")
	fmt.Printf("SCCs:      %d nontrivial\n", len(sccs))
	fmt.Printf("cycles:    %d", len(cycles))
	if truncated {
		fmt.Printf(" (truncated at %d)", *maxCyc)
	}
	fmt.Println()
	for i, c := range cycles {
		fmt.Printf("  cycle %d (len %d):", i+1, len(c))
		for _, ch := range c {
			fmt.Printf(" %s", net.Channel(ch))
		}
		fmt.Println()
	}
	fmt.Println("note: a cyclic CDG does not by itself imply deadlock; run cmd/deadlock for the full Section 5 analysis")
}
