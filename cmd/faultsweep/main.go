// Command faultsweep runs a fault-injection campaign: the same synthetic
// workload simulated under a grid of fault rates × recovery policies, with
// per-cell delivery, retry and recovery-latency figures emitted as JSON.
//
// Every cell is deterministic — the workload is fixed by -seed, the fault
// schedule by -faultseed and the cell's MTBF — so a campaign with the same
// flags produces byte-identical output, making sweeps diffable across
// code changes.
//
// Example:
//
//	faultsweep -topo mesh -dims 4x4 -alg dor -rate 0.05 -duration 200 \
//	           -mtbfs 2000,1000,500 -policies abort-retry,drop,reroute
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/obsv"
	"repro/internal/obsv/manifest"
	"repro/internal/obsv/serve"
	"repro/internal/obsv/telemetry"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// campaign is the top-level JSON document.
type campaign struct {
	Network  string  `json:"network"`
	Routing  string  `json:"routing"`
	Pattern  string  `json:"pattern"`
	Rate     float64 `json:"rate"`
	Length   int     `json:"length"`
	Duration int     `json:"duration"`
	Seed     int64   `json:"seed"`
	Messages int     `json:"messages"`

	FaultSeed  int64   `json:"fault_seed"`
	MeanRepair float64 `json:"mean_repair"`
	PermFrac   float64 `json:"permanent_fraction"`
	RouterFrac float64 `json:"router_fraction"`

	Cells []cell `json:"cells"`
}

// cell is one (MTBF, policy) point of the sweep.
type cell struct {
	MTBF              float64      `json:"mtbf"`
	Policy            string       `json:"policy"`
	ScheduledFaults   int          `json:"scheduled_faults"`
	DeliveredFraction float64      `json:"delivered_fraction"`
	Report            fault.Report `json:"report"`

	// telemetry is forwarded to the cell's manifest run, not the campaign
	// JSON (the campaign document predates telemetry and stays byte-stable
	// when the flags are off).
	telemetry *telemetry.Summary
}

func main() {
	var (
		topo     = flag.String("topo", "mesh", "topology: mesh, torus, ring, uring, hypercube, star, complete")
		dims     = flag.String("dims", "4x4", "dimensions, e.g. 8x8 (grids) or 8 (others)")
		vcs      = flag.Int("vcs", 1, "virtual channels per link (grids)")
		alg      = flag.String("alg", "dor", "oblivious routing: dor, negfirst, dallyseitz, ecube, bfs, valiant, valiantsplit, hub")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform, transpose, bitrev, hotspot")
		rate     = flag.Float64("rate", 0.05, "per-node per-cycle injection probability")
		length   = flag.Int("length", 8, "message length in flits")
		duration = flag.Int("duration", 200, "injection window in cycles")
		seed     = flag.Int64("seed", 1, "workload seed")
		depth    = flag.Int("bufdepth", 1, "flit buffer depth per channel")
		maxCyc   = flag.Int("maxcycles", 200_000, "simulation cycle budget per cell")

		mtbfs      = flag.String("mtbfs", "4000,2000,1000,500", "comma-separated mean cycles between faults per channel")
		repair     = flag.Float64("repair", 25, "mean repair time of transient faults, in cycles")
		permfrac   = flag.Float64("permfrac", 0.1, "fraction of channel faults that are permanent")
		routerfrac = flag.Float64("routerfrac", 0, "fraction of faults striking a whole router")
		faultseed  = flag.Int64("faultseed", 1, "fault generation seed")
		policies   = flag.String("policies", "abort-retry,drop,reroute", "comma-separated recovery policies")
		fairness   = flag.Bool("fairness", false, "exit nonzero if any cell leaves a message unaccounted (not delivered, dropped by policy, in recovery, or excused)")
		outPath    = flag.String("o", "", "output file (default stdout)")
	)
	obsvF := cli.RegisterObsvFlags()
	flag.Parse()

	if cli.AdaptiveNames[*alg] {
		log.Fatalf("faultsweep: adaptive algorithm %q is not supported; use an oblivious one", *alg)
	}
	a, grid, err := cli.Build(*topo, *alg, *dims, *vcs)
	if err != nil {
		log.Fatal(err)
	}
	net := a.Network()
	w := traffic.Workload{Alg: a, Pattern: buildPattern(*pattern, net, grid), Rate: *rate, Length: *length, Duration: *duration, Seed: *seed}
	msgs, err := w.Messages()
	if err != nil {
		log.Fatal(err)
	}

	var pols []fault.Policy
	for _, p := range strings.Split(*policies, ",") {
		pol, err := fault.ParsePolicy(p)
		if err != nil {
			log.Fatal(err)
		}
		pols = append(pols, pol)
	}
	var rates []float64
	for _, m := range strings.Split(*mtbfs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(m), 64)
		if err != nil || v <= 0 {
			log.Fatalf("faultsweep: bad mtbf %q", m)
		}
		rates = append(rates, v)
	}

	obs, err := obsvF.Open("faultsweep "+net.Name(), cli.ChannelLanes(net))
	if err != nil {
		log.Fatal(err)
	}

	doc := campaign{
		Network: net.Name(), Routing: a.Name(), Pattern: *pattern,
		Rate: *rate, Length: *length, Duration: *duration, Seed: *seed,
		Messages: len(msgs), FaultSeed: *faultseed, MeanRepair: *repair,
		PermFrac: *permfrac, RouterFrac: *routerfrac,
		Cells: []cell{},
	}
	for _, mtbf := range rates {
		sch, err := fault.Generate(net, fault.GenParams{
			Seed: *faultseed, Horizon: *duration, MTBF: mtbf,
			MeanRepair: *repair, PermanentFraction: *permfrac, RouterFraction: *routerfrac,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, pol := range pols {
			c := runCell(net, a, msgs, sch, pol, mtbf, *depth, *maxCyc, obs)
			doc.Cells = append(doc.Cells, c)
			obs.RecordRun(manifest.Run{
				Name:         fmt.Sprintf("mtbf%g %s", mtbf, c.Policy),
				TopologyHash: manifest.TopologyHash(net),
				Verdict:      c.Report.Result,
				Telemetry:    c.telemetry,
			})
		}
	}
	if err := obs.Close(); err != nil {
		log.Fatal(err)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if *outPath == "" {
		os.Stdout.Write(out)
	} else {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("faultsweep: wrote %d cells to %s\n", len(doc.Cells), *outPath)
	}

	if *fairness {
		unfair := 0
		for _, c := range doc.Cells {
			if a := c.Report.Accounting; !a.Fair() {
				unfair++
				fmt.Fprintf(os.Stderr, "faultsweep: FAIRNESS VIOLATION mtbf=%g policy=%s: messages %v unaccounted (ledger %+v)\n",
					c.MTBF, c.Policy, a.Unaccounted, a)
			}
		}
		if unfair > 0 {
			log.Fatalf("faultsweep: %d of %d cells left messages unaccounted", unfair, len(doc.Cells))
		}
		fmt.Fprintf(os.Stderr, "faultsweep: fairness OK — every message in all %d cells is delivered, dropped by policy, in recovery, or excused\n", len(doc.Cells))
	}
}

// runCell simulates one (schedule, policy) point on a fresh simulator.
func runCell(net *topology.Network, a routing.Algorithm, msgs []sim.MessageSpec, sch fault.Schedule, pol fault.Policy, mtbf float64, depth, maxCyc int, obs *cli.Observer) cell {
	s := sim.New(net, sim.Config{BufferDepth: depth})
	col, rec := obs.NewTelemetry(net)
	if col != nil {
		s.SetTelemetry(col)
	}
	tracer := obs.Tracer
	if rec != nil {
		tracer = obsv.Multi{obs.Tracer, rec}
	}
	s.SetTracer(tracer)
	for _, m := range msgs {
		s.MustAdd(m)
	}
	cellName := fmt.Sprintf("mtbf%g %s", mtbf, pol)
	var heartbeat func(fault.Heartbeat)
	if obs.Server != nil {
		heartbeat = func(h fault.Heartbeat) {
			obs.Publish(serve.Snapshot{
				Source: "campaign", Name: cellName,
				Cycle: h.Cycle, Messages: h.Messages, Delivered: h.Delivered, Dropped: h.Dropped,
				Faults: h.FaultsInjected, Interventions: h.Interventions,
				ElapsedMS: h.Elapsed.Milliseconds(),
			})
		}
	}
	r := fault.Runner{Sim: s, Schedule: sch, Recovery: fault.DefaultRecovery(pol), Alg: a, Tracer: tracer, Progress: heartbeat}
	rep := r.Run(maxCyc)
	// Flight-recorder dumps go to a per-cell subdirectory; only cells that
	// went wrong (deadlock/timeout verdicts or liveness classifications)
	// produce one.
	reason := ""
	switch rep.Outcome.Result {
	case sim.ResultDeadlock:
		reason = "deadlock"
	case sim.ResultTimeout:
		reason = "timeout"
	}
	if reason == "" {
		switch {
		case rep.LocalDeadlocks > 0:
			reason = "local-deadlock"
		case rep.Livelocks > 0:
			reason = "livelock"
		case rep.Starvations > 0:
			reason = "starvation"
		}
	}
	if reason != "" {
		obs.DumpFlight(rec, fmt.Sprintf("mtbf%g-%s", mtbf, pol), reason)
	}
	return cell{
		MTBF: mtbf, Policy: pol.String(),
		ScheduledFaults:   len(sch.Events),
		DeliveredFraction: rep.Stats.DeliveredFraction(),
		Report:            rep,
		telemetry:         cli.TelemetrySummary(col, nil),
	}
}

// buildPattern resolves a traffic pattern name.
func buildPattern(pattern string, net *topology.Network, grid *topology.Grid) traffic.Pattern {
	switch pattern {
	case "uniform":
		return traffic.Uniform(net.NumNodes())
	case "transpose":
		if grid == nil || len(grid.Dims) != 2 || grid.Dims[0] != grid.Dims[1] {
			log.Fatal("faultsweep: transpose needs a square 2-D mesh/torus")
		}
		return traffic.Transpose(grid)
	case "bitrev":
		return traffic.BitReversal(net.NumNodes())
	case "hotspot":
		return traffic.Hotspot(net.NumNodes(), 0, 0.3)
	}
	log.Fatalf("faultsweep: unknown pattern %q", pattern)
	return nil
}
