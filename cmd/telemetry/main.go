// Command telemetry works with dumped flight bundles offline. Its
// replay subcommand re-renders a bundle's artifacts — per-frame heatmap
// animation, wait-for DOT, campaign timeline, and a summary JSON —
// without re-running the simulation: everything is derived from the
// bundle bytes alone, so replaying the same bundle twice yields
// byte-identical output, and replaying on a different machine yields the
// same bytes as the original run's recorder.
//
// Examples:
//
//	telemetry replay -bundle flight/           # writes flight/replay/
//	telemetry replay -bundle flight/flight.jsonl -out rendered/
//
// Exit status: 0 on success, 1 on a malformed bundle or I/O error; with
// -check-slo, 4 when the bundle's SLO report carries violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obsv/telemetry"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: telemetry replay -bundle <dir|flight.jsonl> [-out <dir>] [-check-slo]\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "replay":
		fs := flag.NewFlagSet("replay", flag.ExitOnError)
		bundle := fs.String("bundle", "", "flight bundle directory or flight.jsonl path")
		out := fs.String("out", "", "output directory (default: <bundle dir>/replay)")
		checkSLO := fs.Bool("check-slo", false, "exit 4 when the bundle's SLO report has violations")
		fs.Parse(os.Args[2:])
		if *bundle == "" {
			usage()
		}
		code, err := replay(*bundle, *out, *checkSLO)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
		os.Exit(code)
	default:
		usage()
	}
}

// replay parses the bundle at path (a directory holding flight.jsonl or
// the file itself) and writes the re-rendered artifacts into out. It
// returns the process exit code.
func replay(path, out string, checkSLO bool) (int, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	if st.IsDir() {
		dir = path
		path = filepath.Join(path, "flight.jsonl")
	}
	if out == "" {
		out = filepath.Join(dir, "replay")
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	b, err := telemetry.ParseBundle(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return 0, err
	}
	artifacts := []struct {
		name string
		data []byte
	}{
		{"summary.json", b.RenderSummary()},
		{"waitfor.dot", b.RenderDOT()},
		{"heatmap.svg", b.RenderHeatmap()},
		{"heatmap_anim.svg", b.RenderHeatmapAnim()},
		{"timeline.svg", b.RenderTimeline()},
	}
	for _, a := range artifacts {
		if err := os.WriteFile(filepath.Join(out, a.name), a.data, 0o644); err != nil {
			return 0, err
		}
	}
	os.Stdout.Write(b.RenderSummary())
	if checkSLO && b.SLO != nil && !b.SLO.OK() {
		return 4, nil
	}
	return 0, nil
}
