package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obsv"
	"repro/internal/obsv/telemetry"
	"repro/internal/topology"
)

// dumpFixture builds a deterministic flight bundle: a small mesh with a
// two-message wait cycle, adaptive-stride telemetry with a window, and
// an attached SLO report.
func dumpFixture(t *testing.T, dir string) {
	t.Helper()
	g := topology.NewMesh([]int{2, 2}, 1)
	c := telemetry.NewCollector(g.Network.NumChannels(), telemetry.Config{
		Stride: 2, FrameEvery: 2, Ring: 4, Adaptive: true, MaxStride: 8, WindowBytes: 4 << 10,
	})
	r := telemetry.NewFlightRecorder(g.Network, 8, c)
	var flits int64
	for now := 0; now < 120; now++ {
		if !c.Due(now) {
			continue
		}
		busy, _, blocked := c.Accum()
		if now < 60 {
			busy[0]++
			busy[1]++
			blocked[2]++
		}
		flits++
		c.FinishSample(now, flits, 2)
	}
	r.Event(obsv.Event{Kind: obsv.KindWaitEdgeAdd, Cycle: 100, Msg: 0, Ch: 1, Owner: 1})
	r.Event(obsv.Event{Kind: obsv.KindWaitEdgeAdd, Cycle: 100, Msg: 1, Ch: 2, Owner: 0})
	r.Event(obsv.Event{Kind: obsv.KindDeadlock, Cycle: 101, N: 2})

	bank := telemetry.NewBank(4)
	bank.Observe(0, 120)
	bank.Observe(1, 900)
	objs, err := telemetry.ParseSLO("p99<=500")
	if err != nil {
		t.Fatal(err)
	}
	r.SetSLO(bank.Evaluate(objs).AppendJSON(nil))

	if err := r.Dump(dir, ""); err != nil {
		t.Fatal(err)
	}
}

func TestReplayDeterministicAndFaithful(t *testing.T) {
	bundle := t.TempDir()
	dumpFixture(t, bundle)

	out1 := filepath.Join(t.TempDir(), "r1")
	out2 := filepath.Join(t.TempDir(), "r2")
	for _, out := range []string{out1, out2} {
		code, err := replay(bundle, out, false)
		if err != nil || code != 0 {
			t.Fatalf("replay: code %d err %v", code, err)
		}
	}
	names := []string{"summary.json", "waitfor.dot", "heatmap.svg", "heatmap_anim.svg", "timeline.svg"}
	for _, name := range names {
		a, err := os.ReadFile(filepath.Join(out1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(out2, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s not byte-deterministic across replays", name)
		}
		if len(a) == 0 {
			t.Fatalf("%s empty", name)
		}
	}

	// The replayed wait-for DOT must be byte-identical to the original
	// recorder's artifact — the shared renderer guarantee.
	orig, err := os.ReadFile(filepath.Join(bundle, "waitfor.dot"))
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := os.ReadFile(filepath.Join(out1, "waitfor.dot"))
	if !bytes.Equal(orig, rep) {
		t.Fatalf("replayed waitfor.dot diverged from original:\n--- original\n%s\n--- replay\n%s", orig, rep)
	}

	// Free text (SLO specs, reasons) must be XML-escaped in SVG text
	// nodes, or "p99<=500" breaks well-formedness.
	tl, _ := os.ReadFile(filepath.Join(out1, "timeline.svg"))
	if !bytes.Contains(tl, []byte("p99&lt;=500")) || bytes.Contains(tl, []byte("p99<=500")) {
		t.Fatalf("timeline.svg SLO spec not XML-escaped:\n%s", tl)
	}

	sum, _ := os.ReadFile(filepath.Join(out1, "summary.json"))
	for _, want := range []string{`"telemetry_replay":true`, `"reason":"deadlock"`, `"window":{`, `"slo_violations":2`} {
		if !bytes.Contains(sum, []byte(want)) {
			t.Fatalf("summary missing %s:\n%s", want, sum)
		}
	}
}

func TestReplayCheckSLOExitCode(t *testing.T) {
	bundle := t.TempDir()
	dumpFixture(t, bundle)
	code, err := replay(bundle, filepath.Join(t.TempDir(), "out"), true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 4 {
		t.Fatalf("check-slo exit code %d, want 4 (fixture violates p99<=500)", code)
	}
}

func TestReplayRejectsNonBundle(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "flight.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replay(dir, filepath.Join(dir, "out"), false); err == nil {
		t.Fatal("replay accepted a non-bundle header")
	}
}
