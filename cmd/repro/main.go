// Command repro regenerates every experimental artifact of the paper —
// each figure and theorem of Schwiebert (SPAA '97) — and prints a
// paper-vs-measured report. EXPERIMENTS.md is the recorded output of this
// command.
//
// Experiments (see DESIGN.md for the index):
//
//	E1  Figure 1 / Theorem 1   cyclic CDG yet deadlock-free
//	E2  Corollaries 1-3        screened algorithm families
//	E3  Theorem 3              minimal routing admits no unreachable cycles
//	E4  Figure 2 / Theorem 4   two sharers always deadlock
//	E5  Figure 3 / Theorem 5   three-sharer classification
//	E6  Section 6 / Gen(k)     minimal clock-skew tolerance grows with k
//	E7  Section 1 context      wormhole latency/throughput characteristics
//	E8  Section 7 extensions   TheoremN generalization; adaptive routing
//	E9  beyond the paper       liveness taxonomy: local deadlock, livelock
//
// Flags select subsets and effort; the default runs everything at moderate
// effort in a few minutes.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/cdg"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mcheck"
	"repro/internal/papernets"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/unreachable"
	"repro/internal/waitfor"
)

var (
	only  = flag.String("only", "", "comma-separated experiment list, e.g. e1,e5 (default: all)")
	deep  = flag.Bool("deep", false, "run the expensive variants (multi-copy searches, larger k)")
	obsvF = cli.RegisterObsvFlags()
	redF  = cli.RegisterReductionFlag()
	red   mcheck.Reduction
	obs   *cli.Observer
)

// searchOpts overlays the command's shared flags onto a search's base
// options, so every experiment's exhaustive search reports through
// -trace/-metrics and honors -reduction (verdict-preserving, so the
// regenerated report is unchanged; only state counts shrink).
func searchOpts(o mcheck.SearchOptions) mcheck.SearchOptions {
	o.Reduction = red
	o.Tracer = obs.Tracer
	o.Metrics = obs.Metrics
	return o
}

// search runs one experiment's exhaustive search through the shared
// observability plumbing: flag overlay, live -serve progress under the
// experiment's name, and a -manifest run entry.
func search(name string, sc sim.Scenario, o mcheck.SearchOptions) mcheck.SearchResult {
	o = searchOpts(o)
	o.Progress = obs.SearchProgress(name)
	o.ProgressEvery = obs.ProgressInterval()
	res := mcheck.Search(sc, o)
	obs.PublishSearchDone(name, res)
	run := cli.SearchRun(name, sc.Net, res)
	run.Scenario = sc.Name
	obs.RecordRun(run)
	return res
}

// liveness is search's twin for the liveness engine.
func liveness(name string, sc sim.Scenario, o mcheck.SearchOptions) mcheck.SearchResult {
	o = searchOpts(o)
	o.Progress = obs.SearchProgress(name)
	o.ProgressEvery = obs.ProgressInterval()
	res := mcheck.SearchLiveness(sc, o)
	obs.PublishSearchDone(name, res)
	run := cli.SearchRun(name, sc.Net, res)
	run.Scenario = sc.Name
	obs.RecordRun(run)
	return res
}

func main() {
	flag.Parse()
	red = cli.Reduction(*redF)
	var err error
	obs, err = obsvF.Open("repro", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer obs.Close()
	want := map[string]bool{}
	if *only != "" {
		for _, e := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}
	run := func(name string, fn func()) {
		if len(want) > 0 && !want[name] {
			return
		}
		fmt.Printf("==== %s ====\n", strings.ToUpper(name))
		fn()
		fmt.Println()
	}
	run("e1", e1)
	run("e2", e2)
	run("e3", e3)
	run("e4", e4)
	run("e5", e5)
	run("e6", e6)
	run("e7", e7)
	run("e8", e8)
	run("e9", e9)
}

func check(ok bool) string {
	if ok {
		return "MATCHES PAPER"
	}
	return "** DIVERGES **"
}

// e1 — Figure 1 / Theorem 1: the Cyclic Dependency algorithm has a cyclic
// CDG yet is deadlock-free.
func e1() {
	pn := papernets.Figure1()
	g := cdg.New(pn.Alg)
	cycles, _ := g.Cycles(0)
	fmt.Printf("E1.1 CDG of the Cyclic Dependency algorithm: %d dependencies, %d cycle(s) of length %d\n",
		g.NumEdges(), len(cycles), len(cycles[0]))
	fmt.Printf("     paper: one 14-channel cycle           -> %s\n",
		check(len(cycles) == 1 && len(cycles[0]) == 14))

	props := routing.CheckAll(pn.Alg)
	fmt.Printf("E1.2 properties: %s\n", props)
	fmt.Printf("     paper: oblivious (CxN->C), nonminimal, not suffix-closed -> %s\n",
		check(props.RoutingFuncForm && !props.Minimal && !props.SuffixClosed))

	res := search("e1.3 figure1", pn.Scenario, mcheck.SearchOptions{})
	fmt.Printf("E1.3 exhaustive search (all injection timings + arbitrations): %s over %d states (%.0f states/sec, peak visited %d, %d worker(s))\n",
		res.Verdict, res.States, res.StatesPerSec, res.PeakVisited, res.Workers)
	fmt.Printf("     paper Theorem 1: deadlock-free          -> %s\n",
		check(res.Verdict == mcheck.VerdictNoDeadlock))

	rep := core.Analyze(pn.Alg, core.Options{})
	fmt.Printf("E1.4 static analyzer: %s (%s)\n", rep.Verdict, rep.Reason)
	fmt.Printf("     paper Theorem 1                        -> %s\n",
		check(rep.Verdict == core.DeadlockFree))

	skew := search("e1.5 figure1 skew1", pn.Scenario, mcheck.SearchOptions{StallBudget: 1, FreezeInTransitOnly: true})
	fmt.Printf("E1.5 with 1 cycle of router skew: %s\n", skew.Verdict)
	fmt.Printf("     paper Section 6: becomes a deadlock     -> %s\n",
		check(skew.Verdict == mcheck.VerdictDeadlock))

	if *deep {
		sc := pn.Scenario
		sc.Msgs = append(append([]sim.MessageSpec(nil), sc.Msgs...), sc.Msgs[0], sc.Msgs[2])
		multi := search("e1.6 figure1 multi", sc, mcheck.SearchOptions{MaxStates: 50_000_000})
		fmt.Printf("E1.6 with extra copies of M1 and M3: %s over %d states\n", multi.Verdict, multi.States)
		fmt.Printf("     paper Theorem 1 (any rate)              -> %s\n",
			check(multi.Verdict == mcheck.VerdictNoDeadlock))
	}
}

// e2 — Corollaries 1-3: coherent / suffix-closed / input-channel
// independent algorithms cannot have unreachable configurations, and the
// classic algorithms have acyclic CDGs.
func e2() {
	type row struct {
		name string
		alg  routing.Algorithm
	}
	rows := []row{
		{"XY/DOR 4x4 mesh", routing.DimensionOrder(topology.NewMesh([]int{4, 4}, 1))},
		{"negative-first 4x4 mesh", routing.NegativeFirst(topology.NewMesh([]int{4, 4}, 1))},
		{"e-cube hypercube-4", routing.ECube(topology.NewHypercube(4))},
		{"Dally-Seitz 4x4 torus (2 VC)", routing.DallySeitzTorus(topology.NewTorus([]int{4, 4}, 2))},
	}
	allOK := true
	for _, r := range rows {
		props := routing.CheckAll(r.alg)
		g := cdg.New(r.alg)
		acyclic, _ := g.Acyclic()
		fmt.Printf("E2   %-30s suffix-closed=%-5v acyclic-CDG=%-5v\n", r.name, props.SuffixClosed, acyclic)
		allOK = allOK && props.SuffixClosed && acyclic
	}
	fmt.Printf("     paper: classic algorithms are suffix-closed with acyclic CDGs -> %s\n", check(allOK))
	// The converse screen: a suffix-closed algorithm WITH a cycle is
	// deadlock-capable (Corollary 2).
	ring := routing.ShortestBFS(topology.NewRing(4, false))
	rep := core.Analyze(ring, core.Options{})
	fmt.Printf("E2   unidirectional-ring shortest routing: screen=%q verdict=%s\n", rep.Screen, rep.Verdict)
	fmt.Printf("     paper Corollaries 1-2: cycle + suffix-closed => deadlock -> %s\n",
		check(rep.Screen != "" && rep.Verdict == core.DeadlockCapable))
}

// e3 — Theorem 3: minimal oblivious routing cannot produce the paper's
// unreachable cycles. Every paper construction is nonminimal, and random
// minimal algorithms never yield a cycle classified unreachable.
func e3() {
	nonminimal := true
	for _, pn := range []*papernets.Net{papernets.Figure1(), papernets.Figure2(), papernets.Figure3('a')} {
		if routing.CheckMinimal(pn.Alg) == nil {
			nonminimal = false
		}
	}
	fmt.Printf("E3.1 all paper constructions nonminimal: %v -> %s\n", nonminimal, check(nonminimal))

	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	nets := []*topology.Network{
		topology.NewMesh([]int{3, 3}, 1).Network,
		topology.NewRing(5, true),
		topology.NewHypercube(3),
	}
	cyclic, unreachableCycles := 0, 0
	for _, net := range nets {
		for _, seed := range seeds {
			alg := routing.RandomMinimal(net, seed)
			rep := core.Analyze(alg, core.Options{})
			if !rep.Acyclic {
				cyclic++
				if rep.Verdict == core.DeadlockFree {
					unreachableCycles++
				}
			}
		}
	}
	fmt.Printf("E3.2 random minimal algorithms (%d instances): %d had cyclic CDGs, %d of those were classified as having unreachable cycles\n",
		len(nets)*len(seeds), cyclic, unreachableCycles)
	fmt.Printf("     paper Theorem 3: minimal routing has no unreachable single-shared-channel cycles -> %s\n",
		check(unreachableCycles == 0))
}

// e4 — Figure 2 / Theorem 4: a channel shared by exactly two messages
// outside the cycle always yields a reachable deadlock.
func e4() {
	res := search("e4.1 figure2", papernets.Figure2().Scenario, mcheck.SearchOptions{})
	fmt.Printf("E4.1 Figure 2 search: %s over %d states -> %s\n",
		res.Verdict, res.States, check(res.Verdict == mcheck.VerdictDeadlock))

	total, reachable := 0, 0
	for d1 := 2; d1 <= 5; d1++ {
		for d2 := 2; d2 <= 5; d2++ {
			for _, c1 := range []int{2, 3, 4} {
				for _, c2 := range []int{2, 3, 4} {
					pn := papernets.Build("two", []papernets.Entrant{
						{Shared: true, D: d1, C: c1},
						{Shared: true, D: d2, C: c2},
					})
					v, _ := unreachable.Classify(pn.Configuration())
					total++
					if v == unreachable.DeadlockReachable {
						reachable++
					}
				}
			}
		}
	}
	fmt.Printf("E4.2 two-sharer family: %d/%d reachable\n", reachable, total)
	fmt.Printf("     paper Theorem 4: all reachable           -> %s\n", check(reachable == total))
}

// e5 — Figure 3 / Theorem 5: the six sub-figures classify as the paper
// says, and the condition evaluator matches exhaustive search across the
// family.
func e5() {
	wantFree := map[byte]bool{'a': true, 'b': true, 'c': false, 'd': false, 'e': false, 'f': false}
	allOK := true
	for letter := byte('a'); letter <= 'f'; letter++ {
		pn := papernets.Figure3(letter)
		rep := core.Analyze(pn.Alg, core.Options{})
		free := rep.Verdict == core.DeadlockFree
		status := "deadlock"
		if free {
			status = "false resource cycle"
		}
		detail := ""
		if t5 := unreachable.Theorem5(pn.Configuration()); t5.Applicable && !t5.Unreachable {
			var bad []string
			for _, c := range t5.Conditions {
				if !c.Holds {
					bad = append(bad, fmt.Sprintf("%d:%s", c.Number, c.Name))
				}
			}
			detail = " (violated: " + strings.Join(bad, ", ") + ")"
		}
		fmt.Printf("E5.%c Figure 3(%c): %s%s -> %s\n", letter, letter, status, detail, check(free == wantFree[letter]))
		allOK = allOK && free == wantFree[letter]
	}

	// Family agreement between the Theorem 5 evaluator and the model
	// checker (with one interposed copy per message).
	agree, total := 0, 0
	ds := [][3]int{{4, 2, 3}, {5, 2, 3}, {6, 2, 3}, {5, 3, 4}, {4, 3, 2}, {3, 3, 2}}
	cs := [][3]int{{2, 2, 2}, {4, 4, 4}, {5, 2, 4}, {3, 4, 2}}
	for _, D := range ds {
		for _, C := range cs {
			pn := papernets.ThreeSharer("fam", papernets.ThreeSharerParams{D: D, C: C})
			t5 := unreachable.Theorem5(pn.Configuration())
			truth := groundTruthWithCopies(pn.Scenario)
			total++
			if t5.Unreachable == truth {
				agree++
			}
		}
	}
	fmt.Printf("E5.g Theorem 5 iff across %d instances: %d mismatches -> %s\n",
		total, total-agree, check(total == agree))
	_ = allOK
}

func groundTruthWithCopies(sc sim.Scenario) bool {
	if search("e5 "+sc.Name, sc, mcheck.SearchOptions{MaxStates: 20_000_000}).Verdict == mcheck.VerdictDeadlock {
		return false
	}
	for pos := range sc.Msgs {
		out := sc
		out.Msgs = append(append([]sim.MessageSpec(nil), sc.Msgs...), sc.Msgs[pos])
		if search(fmt.Sprintf("e5 %s copy%d", sc.Name, pos), out, mcheck.SearchOptions{MaxStates: 20_000_000}).Verdict == mcheck.VerdictDeadlock {
			return false
		}
	}
	return true
}

// e6 — Section 6 / Gen(k): the minimal adversarial stall needed for a
// deadlock grows linearly with k (the paper: at least k cycles).
func e6() {
	maxK := 3
	if *deep {
		maxK = 5
	}
	fmt.Println("E6   k | minimal stall cycles | paper bound (>= k)")
	allOK := true
	for k := 1; k <= maxK; k++ {
		pn := papernets.GenK(k)
		minimal := -1
		for b := 0; b <= k+2; b++ {
			res := search(fmt.Sprintf("e6 gen%d stall%d", k, b), pn.Scenario, mcheck.SearchOptions{
				StallBudget: b, FreezeInTransitOnly: true, MaxStates: 50_000_000,
			})
			if res.Verdict == mcheck.VerdictDeadlock {
				minimal = b
				break
			}
		}
		ok := minimal >= k
		allOK = allOK && ok
		fmt.Printf("     %d | %20d | %s\n", k, minimal, check(ok))
	}
	fmt.Printf("     measured: minimal stall = k exactly      -> %s\n", check(allOK))
}

// e7 — Section 1 context: wormhole latency is largely insensitive to
// distance (vs store-and-forward's distance x length), and deadlock-free
// routing sustains load where naive routing deadlocks.
func e7() {
	// Latency vs distance on an unloaded 8x8 mesh, message length 16.
	g := topology.NewMesh([]int{8, 8}, 1)
	alg := routing.DimensionOrder(g)
	const L = 16
	fmt.Println("E7.1 unloaded latency vs distance (8x8 mesh, 16-flit messages)")
	fmt.Println("     hops | wormhole (measured) | store-and-forward (analytic)")
	okShape := true
	for _, h := range []int{1, 4, 8, 14} {
		src := g.NodeAt([]int{0, 0})
		var dst topology.NodeID
		if h <= 7 {
			dst = g.NodeAt([]int{0, h})
		} else {
			dst = g.NodeAt([]int{h - 7, 7})
		}
		s := sim.New(g.Network, sim.Config{})
		id := s.MustAdd(sim.MessageSpec{Src: src, Dst: dst, Length: L, Path: alg.Path(src, dst)})
		s.Run(10_000)
		lat := s.Message(id).DeliveredAt + 1
		saf := h * L
		fmt.Printf("     %4d | %19d | %d\n", h, lat, saf)
		if lat != h+L-1+1 { // header pipeline + drain, inclusive count
			okShape = false
		}
	}
	fmt.Printf("     paper: wormhole ~ distance + length, SAF ~ distance x length -> %s\n", check(okShape))

	// Throughput under uniform load: deadlock-free DOR vs deadlock-prone
	// shortest routing on a unidirectional ring.
	w := traffic.Workload{
		Alg: alg, Pattern: traffic.Uniform(64), Rate: 0.02, Length: 8, Duration: 300, Seed: 42,
	}
	stats, out, err := w.Run(sim.Config{}, 1_000_000)
	if err != nil {
		fmt.Println("E7.2 error:", err)
		return
	}
	fmt.Printf("E7.2 DOR 8x8 mesh, uniform 0.02: %s, %d/%d delivered, avg latency %.1f, throughput %.3f flits/cycle\n",
		out.Result, stats.Delivered, stats.Messages, stats.AvgLatency, stats.Throughput)

	ring := topology.NewRing(8, false)
	rw := traffic.Workload{
		Alg: routing.ShortestBFS(ring), Pattern: traffic.Uniform(8), Rate: 0.5, Length: 8, Duration: 100, Seed: 42,
	}
	_, rout, err := rw.Run(sim.Config{}, 1_000_000)
	if err != nil {
		fmt.Println("E7.3 error:", err)
		return
	}
	fmt.Printf("E7.3 naive ring routing under load: %s -> %s\n", rout.Result,
		check(rout.Result == sim.ResultDeadlock && out.Result == sim.ResultDelivered))
}

// e8 — the paper's Section 7 future-work extensions, built and measured:
// the N-member generalization of Theorem 5 and adaptive routing.
func e8() {
	// TheoremN vs Theorem 5 on three sharers, and on Figure 1's four.
	f1 := papernets.Figure1().Configuration()
	tn := unreachable.TheoremN(f1)
	fmt.Printf("E8.1 TheoremN on Figure 1's four-member configuration: unreachable=%v -> %s\n",
		tn.Unreachable, check(tn.Unreachable))

	// Adaptive routing: exhaustive verification on the 2x2 mesh with four
	// corner-to-corner messages.
	type inst struct {
		name string
		sc   sim.Scenario
		want mcheck.Verdict
	}
	buildAdaptive := func(vcs int, mk func(*topology.Grid) adaptive.Algorithm) (sim.Scenario, string) {
		g := topology.NewMesh([]int{2, 2}, vcs)
		alg := mk(g)
		sc := sim.Scenario{Name: alg.Name, Net: g.Network, Cfg: sim.Config{SameCycleHandoff: true}}
		corners := [][2][2]int{
			{{0, 0}, {1, 1}}, {{1, 1}, {0, 0}}, {{0, 1}, {1, 0}}, {{1, 0}, {0, 1}},
		}
		for _, c := range corners {
			sc.Msgs = append(sc.Msgs, alg.Spec(g.NodeAt(c[0][:]), g.NodeAt(c[1][:]), 3, 0))
		}
		return sc, alg.Name
	}
	faSc, _ := buildAdaptive(1, adaptive.FullyAdaptiveMinimal)
	wfSc, _ := buildAdaptive(1, adaptive.WestFirst)
	insts := []inst{
		{"fully adaptive minimal (1 VC)", faSc, mcheck.VerdictDeadlock},
		{"west-first turn model (1 VC) ", wfSc, mcheck.VerdictNoDeadlock},
	}
	if *deep {
		duSc, _ := buildAdaptive(2, adaptive.DuatoMesh)
		insts = append(insts, inst{"duato escape protocol (2 VC) ", duSc, mcheck.VerdictNoDeadlock})
	}
	for _, in := range insts {
		res := search("e8.2 "+strings.TrimSpace(in.name), in.sc, mcheck.SearchOptions{MaxStates: 50_000_000})
		fmt.Printf("E8.2 %s exhaustive: %s over %d states (%.0f states/sec) -> %s\n",
			in.name, res.Verdict, res.States, res.StatesPerSec, check(res.Verdict == in.want))
	}
	if !*deep {
		fmt.Println("     (run with -deep to also verify Duato's protocol exhaustively, ~430k states)")
	}
}

// e9 — beyond the paper: the liveness taxonomy the global Definition 6
// verdict cannot distinguish. Local deadlock (a permanently dead
// subnetwork inside a live network) on the two-ring gallery scenario, and
// livelock (the stale-selection adversary starving messages without any
// Definition 6 cycle) — each with an independently verified witness.
func e9() {
	// Local deadlock: ring A's 4-cycle kills channels 0..3 forever while
	// ring B's message still delivers.
	sc := papernets.LocalRings()
	res := liveness("e9.1 localrings", sc, mcheck.SearchOptions{})
	ok := res.Verdict == mcheck.VerdictLocalDeadlock && res.Local != nil &&
		fmt.Sprint(res.Local.Blocked) == "[0 1 2 3]"
	if ok {
		ok = waitfor.VerifyLocal(mcheck.Replay(sc, res.Trace), res.Local) == nil
	}
	fmt.Printf("E9.1 two disjoint rings: %s over %d states, local witness %s\n",
		res.Verdict, res.States, res.Local)
	fmt.Printf("     expected: local deadlock, blocked subnetwork exactly ring A, witness verifies on replay -> %s\n",
		check(ok))

	// Livelock: deadlock-free under the plain engine, a replayable lasso
	// under the stale-selection adversary.
	lsc := papernets.StaleSelection()
	plain := search("e9.2 staleselection plain", lsc, mcheck.SearchOptions{})
	fmt.Printf("E9.2 stale selection, plain engine: %s over %d states -> %s\n",
		plain.Verdict, plain.States, check(plain.Verdict == mcheck.VerdictNoDeadlock))

	liv := liveness("e9.3 staleselection liveness", lsc, mcheck.SearchOptions{})
	lok := liv.Verdict == mcheck.VerdictLivelock && liv.Lasso != nil &&
		mcheck.VerifyLasso(lsc, liv.Lasso) == nil
	if lok {
		// Re-execute the lasso independently: after one loop iteration and
		// after four, the state encoding is pinned and every starved
		// message's progress counter is frozen.
		one := mcheck.ReplayLasso(lsc, liv.Lasso, 1)
		four := mcheck.ReplayLasso(lsc, liv.Lasso, 4)
		var a, b []byte
		one.EncodeTo(&a)
		four.EncodeTo(&b)
		lok = string(a) == string(b)
		for _, id := range liv.Lasso.Starved {
			if one.Progress(id) != four.Progress(id) {
				lok = false
			}
		}
	}
	if liv.Lasso != nil {
		fmt.Printf("E9.3 stale selection, liveness engine: %s, lasso stem %d / loop %d, starved %v\n",
			liv.Verdict, len(liv.Lasso.Stem), len(liv.Lasso.Loop), liv.Lasso.Starved)
	} else {
		fmt.Printf("E9.3 stale selection, liveness engine: %s (no lasso)\n", liv.Verdict)
	}
	fmt.Printf("     expected: livelock with a verified lasso; replaying the loop never advances a starved message -> %s\n",
		check(lok))
}
