// Package repro reproduces Loren Schwiebert's SPAA 1997 paper
// "Deadlock-Free Oblivious Wormhole Routing with Cyclic Dependencies" as a
// Go library: a flit-level wormhole simulator, channel-dependency-graph
// analysis, an exhaustive deadlock-reachability model checker, the paper's
// network constructions, and the Section 5 unreachable-configuration
// theory. See README.md for an overview, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-vs-measured record.
//
// The root package carries the benchmark harness (bench_test.go): one
// benchmark per figure/table of the paper, regenerating the rows reported
// in EXPERIMENTS.md.
package repro
