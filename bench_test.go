package repro

// One benchmark per experiment of DESIGN.md's index (E1-E7), plus the
// ablation benches for the design choices the paper calls out. Each bench
// regenerates the measurement recorded in EXPERIMENTS.md; absolute times
// are machine-dependent, but the verdicts inside are asserted so a bench
// run doubles as a reproduction run.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/cdg"
	"repro/internal/core"
	"repro/internal/mcheck"
	"repro/internal/obsv"
	"repro/internal/papernets"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/unreachable"
)

// BenchmarkE1_Figure1_CDG builds the Cyclic Dependency algorithm's channel
// dependency graph and enumerates its (single, 14-channel) cycle.
func BenchmarkE1_Figure1_CDG(b *testing.B) {
	pn := papernets.Figure1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := cdg.New(pn.Alg)
		cycles, _ := g.Cycles(0)
		if len(cycles) != 1 || len(cycles[0]) != 14 {
			b.Fatalf("cycles = %d", len(cycles))
		}
	}
}

// skipInShort guards the exhaustive-search benchmarks: a single iteration
// of the heaviest ones runs for seconds, which busts the CI time budget.
// `go test -bench=. -short` still compiles and smoke-runs the cheap ones.
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping exhaustive-search benchmark in -short mode")
	}
}

// BenchmarkE1_Figure1_Search is Theorem 1: the exhaustive state-space
// search over every injection timing and arbitration outcome.
func BenchmarkE1_Figure1_Search(b *testing.B) {
	skipInShort(b)
	pn := papernets.Figure1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{})
		if res.Verdict != mcheck.VerdictNoDeadlock {
			b.Fatalf("verdict = %v", res.Verdict)
		}
	}
}

// BenchmarkE1_Figure1_Analyze is the static Section 5 analysis that proves
// Theorem 1 without search.
func BenchmarkE1_Figure1_Analyze(b *testing.B) {
	pn := papernets.Figure1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.Analyze(pn.Alg, core.Options{})
		if rep.Verdict != core.DeadlockFree {
			b.Fatalf("verdict = %v", rep.Verdict)
		}
	}
}

// BenchmarkE2_PropertyChecks runs the Definition 7-9 property checkers on
// the classic algorithm suite.
func BenchmarkE2_PropertyChecks(b *testing.B) {
	algs := []routing.Algorithm{
		routing.DimensionOrder(topology.NewMesh([]int{4, 4}, 1)),
		routing.NegativeFirst(topology.NewMesh([]int{4, 4}, 1)),
		routing.ECube(topology.NewHypercube(4)),
		routing.DallySeitzTorus(topology.NewTorus([]int{4, 4}, 2)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alg := range algs {
			props := routing.CheckAll(alg)
			if !props.SuffixClosed {
				b.Fatalf("%s not suffix-closed", alg.Name())
			}
		}
	}
}

// BenchmarkE3_RandomMinimalAnalyze analyzes random minimal oblivious
// algorithms (Theorem 3: none of their cycles may classify unreachable).
func BenchmarkE3_RandomMinimalAnalyze(b *testing.B) {
	skipInShort(b)
	net := topology.NewMesh([]int{3, 3}, 1).Network
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg := routing.RandomMinimal(net, int64(i))
		rep := core.Analyze(alg, core.Options{})
		if !rep.Acyclic && rep.Verdict == core.DeadlockFree {
			b.Fatal("minimal routing classified an unreachable cycle")
		}
	}
}

// BenchmarkE4_Figure2_Search is Theorem 4: the two-sharer deadlock search.
func BenchmarkE4_Figure2_Search(b *testing.B) {
	pn := papernets.Figure2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{})
		if res.Verdict != mcheck.VerdictDeadlock {
			b.Fatalf("verdict = %v", res.Verdict)
		}
	}
}

// BenchmarkE5_Figure3_Classify evaluates Theorem 5's conditions and the
// timing classifier on all six Figure 3 instances.
func BenchmarkE5_Figure3_Classify(b *testing.B) {
	nets := make([]*papernets.Net, 0, 6)
	for l := byte('a'); l <= 'f'; l++ {
		nets = append(nets, papernets.Figure3(l))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		free := 0
		for _, pn := range nets {
			cfg := pn.Configuration()
			if v, _ := unreachable.Classify(cfg); v == unreachable.FalseResourceCycle {
				if t5 := unreachable.Theorem5(cfg); !t5.Applicable || t5.Unreachable {
					free++
				}
			}
		}
		if free != 2 {
			b.Fatalf("unreachable figures = %d; want 2 (a and b)", free)
		}
	}
}

// BenchmarkE5_Figure3_SearchAll model-checks all six Figure 3 instances.
func BenchmarkE5_Figure3_SearchAll(b *testing.B) {
	skipInShort(b)
	scenarios := make([]sim.Scenario, 0, 6)
	for l := byte('a'); l <= 'f'; l++ {
		scenarios = append(scenarios, papernets.Figure3(l).Scenario)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sc := range scenarios {
			mcheck.Search(sc, mcheck.SearchOptions{})
		}
	}
}

// BenchmarkE6_GenK measures the cost of deciding Gen(k)'s minimal stall
// tolerance (search at budgets k-1 and k) for k = 1..3.
func BenchmarkE6_GenK(b *testing.B) {
	skipInShort(b)
	for k := 1; k <= 3; k++ {
		pn := papernets.GenK(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				below := mcheck.Search(pn.Scenario, mcheck.SearchOptions{StallBudget: k - 1, FreezeInTransitOnly: true})
				at := mcheck.Search(pn.Scenario, mcheck.SearchOptions{StallBudget: k, FreezeInTransitOnly: true})
				if below.Verdict != mcheck.VerdictNoDeadlock || at.Verdict != mcheck.VerdictDeadlock {
					b.Fatalf("k=%d: %v/%v", k, below.Verdict, at.Verdict)
				}
			}
		})
	}
}

// BenchmarkE7_MeshWorkload simulates the Section 1 context experiment: DOR
// on an 8x8 mesh under uniform load.
func BenchmarkE7_MeshWorkload(b *testing.B) {
	g := topology.NewMesh([]int{8, 8}, 1)
	alg := routing.DimensionOrder(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := traffic.Workload{
			Alg: alg, Pattern: traffic.Uniform(64),
			Rate: 0.02, Length: 8, Duration: 200, Seed: int64(i),
		}
		_, out, err := w.Run(sim.Config{}, 1_000_000)
		if err != nil || out.Result != sim.ResultDelivered {
			b.Fatalf("outcome = %v (%v)", out.Result, err)
		}
	}
}

// BenchmarkE7_SimulatorThroughput measures raw simulator speed: a single
// long message across a 16x16 mesh (flit-moves per second follow from the
// reported ns/op).
func BenchmarkE7_SimulatorThroughput(b *testing.B) {
	g := topology.NewMesh([]int{16, 16}, 1)
	alg := routing.DimensionOrder(g)
	src := g.NodeAt([]int{0, 0})
	dst := g.NodeAt([]int{15, 15})
	path := alg.Path(src, dst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(g.Network, sim.Config{})
		s.MustAdd(sim.MessageSpec{Src: src, Dst: dst, Length: 64, Path: path})
		if out := s.Run(10_000); out.Result != sim.ResultDelivered {
			b.Fatal(out.Result)
		}
	}
}

// BenchmarkAblation_BufferDepth: the paper's "one-flit buffers are the
// hardest case" claim — Theorem 1 search cost and verdict at depths 1, 2
// and 4.
func BenchmarkAblation_BufferDepth(b *testing.B) {
	skipInShort(b)
	pn := papernets.Figure1()
	for _, depth := range []int{1, 2, 4} {
		sc := pn.Scenario.WithBufferDepth(depth)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := mcheck.Search(sc, mcheck.SearchOptions{}); res.Verdict != mcheck.VerdictNoDeadlock {
					b.Fatalf("verdict = %v", res.Verdict)
				}
			}
		})
	}
}

// BenchmarkAblation_MessageLength: minimal vs extended message lengths.
func BenchmarkAblation_MessageLength(b *testing.B) {
	skipInShort(b)
	pn := papernets.Figure1()
	for _, extra := range []int{0, 2, 4} {
		lens := make([]int, len(pn.Scenario.Msgs))
		for i, m := range pn.Scenario.Msgs {
			lens[i] = m.Length + extra
		}
		sc := pn.Scenario.WithLengths(lens)
		b.Run(fmt.Sprintf("extra=%d", extra), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := mcheck.Search(sc, mcheck.SearchOptions{}); res.Verdict != mcheck.VerdictNoDeadlock {
					b.Fatalf("verdict = %v", res.Verdict)
				}
			}
		})
	}
}

// BenchmarkAblation_Arbitration: concrete simulation of the Figure 1
// message set under FIFO vs adversarial priority arbitration (both
// deliver; Theorem 1 needs no arbiter assumptions).
func BenchmarkAblation_Arbitration(b *testing.B) {
	pn := papernets.Figure1()
	arbiters := map[string]sim.Arbiter{
		"fifo":     sim.FIFOArbiter{},
		"priority": sim.PriorityArbiter{Order: []int{1, 3, 0, 2}},
	}
	for name, arb := range arbiters {
		sc := pn.Scenario
		sc.Cfg.Arbiter = arb
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if out := sc.NewSim().Run(10_000); out.Result != sim.ResultDelivered {
					b.Fatalf("outcome = %v", out.Result)
				}
			}
		})
	}
}

// BenchmarkE1_Figure1_SearchParallel is the Theorem 1 search with the
// worker pool left at its default (GOMAXPROCS) rather than pinned to one:
// the wall-time side of the determinism contract the parity suite asserts.
func BenchmarkE1_Figure1_SearchParallel(b *testing.B) {
	skipInShort(b)
	pn := papernets.Figure1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{Parallelism: 0})
		if res.Verdict != mcheck.VerdictNoDeadlock {
			b.Fatalf("verdict = %v", res.Verdict)
		}
	}
}

// BenchmarkEncodeTo measures the binary state encoder on a mid-flight
// Figure 1 state. The companion test TestEncodeToZeroAllocs (internal/sim)
// asserts the zero-allocation property; the bench records the cost.
func BenchmarkEncodeTo(b *testing.B) {
	pn := papernets.Figure1()
	s := pn.Scenario.NewSim()
	for i := 0; i < 4; i++ {
		s.Step()
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		s.EncodeTo(&buf)
	}
	if len(buf) == 0 {
		b.Fatal("no encoding produced")
	}
}

// BenchmarkSearchAllocs reports the allocation profile of a full
// exhaustive search (Figure 2: small enough to run per-iteration, large
// enough that per-state costs dominate). allocs/op here is the number the
// pooling/streaming work in internal/mcheck exists to keep down.
func BenchmarkSearchAllocs(b *testing.B) {
	pn := papernets.Figure2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{})
		if res.Verdict != mcheck.VerdictDeadlock {
			b.Fatalf("verdict = %v", res.Verdict)
		}
	}
}

// BenchmarkE1_Figure1_SearchTraced is the Theorem 1 search with a live
// JSONL trace sink attached — the enabled-path counterpart of
// TestDisabledTracerFastPath_E1. The delta against
// BenchmarkE1_Figure1_Search is the all-in cost of tracing a search.
func BenchmarkE1_Figure1_SearchTraced(b *testing.B) {
	skipInShort(b)
	pn := papernets.Figure1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := obsv.NewJSONL(io.Discard)
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{Tracer: s})
		if res.Verdict != mcheck.VerdictNoDeadlock {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracedSimRun measures a fully traced concrete simulation of
// the Figure 1 scenario (every flit advance, acquire/release and
// wait-edge transition emitted) against the same run untraced.
func BenchmarkTracedSimRun(b *testing.B) {
	pn := papernets.Figure1()
	for _, traced := range []bool{false, true} {
		name := "untraced"
		if traced {
			name = "traced"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := pn.Scenario.NewSim()
				if traced {
					s.SetTracer(obsv.NewJSONL(io.Discard))
				}
				if out := s.Run(10_000); out.Result != sim.ResultDelivered {
					b.Fatal(out.Result)
				}
			}
		})
	}
}

// BenchmarkAblation_SearchStrategy: state-space search vs bounded schedule
// sweep on Figure 1 — same verdict, different cost profile.
func BenchmarkAblation_SearchStrategy(b *testing.B) {
	skipInShort(b)
	pn := papernets.Figure1()
	b.Run("statespace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{}); res.Verdict != mcheck.VerdictNoDeadlock {
				b.Fatal(res.Verdict)
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := mcheck.Sweep(pn.Scenario, mcheck.SweepOptions{
				Window:   6,
				Arbiters: mcheck.AllPriorityArbiters(4),
			})
			if res.Deadlocks != 0 {
				b.Fatal("sweep found a deadlock")
			}
		}
	})
}
