// adaptiveescape demonstrates the adaptive-routing context the paper's
// conclusion points to: fully adaptive minimal routing with one virtual
// channel deadlocks under bursty traffic, while Duato's escape-channel
// protocol — whose candidate structure is cyclic, like the paper's
// oblivious example — survives the very same loads.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/adaptive"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/waitfor"
)

// burst loads the network with a random message burst routed by alg.
func burst(net *topology.Network, alg adaptive.Algorithm, seed int64) *sim.Sim {
	rng := rand.New(rand.NewSource(seed))
	s := sim.New(net, sim.Config{})
	n := net.NumNodes()
	for i := 0; i < 60; i++ {
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		s.MustAdd(alg.Spec(src, dst, 4+rng.Intn(8), rng.Intn(20)))
	}
	return s
}

func main() {
	fmt.Println("4x4 mesh, 60-message bursts, 4-11 flit messages")
	fmt.Println()

	naiveGrid := topology.NewMesh([]int{4, 4}, 1)
	naive := adaptive.FullyAdaptiveMinimal(naiveGrid)
	duatoGrid := topology.NewMesh([]int{4, 4}, 2)
	duato := adaptive.DuatoMesh(duatoGrid)
	wfGrid := topology.NewMesh([]int{4, 4}, 1)
	wf := adaptive.WestFirst(wfGrid)

	deadlocks := 0
	var witness *sim.Sim
	for seed := int64(0); seed < 20; seed++ {
		s := burst(naiveGrid.Network, naive, seed)
		if out := s.Run(200_000); out.Result == sim.ResultDeadlock {
			deadlocks++
			if witness == nil {
				witness = s
			}
		}
	}
	fmt.Printf("fully adaptive minimal (1 VC): %d/20 bursts deadlock\n", deadlocks)
	if witness != nil {
		if d := waitfor.Find(witness); d != nil {
			fmt.Printf("  example cycle: %s\n", d)
		}
	}

	for name, pair := range map[string]struct {
		net *topology.Network
		alg adaptive.Algorithm
	}{
		"duato protocol (escape VC0)  ": {duatoGrid.Network, duato},
		"west-first turn model (1 VC) ": {wfGrid.Network, wf},
	} {
		ok := 0
		for seed := int64(0); seed < 20; seed++ {
			if out := burst(pair.net, pair.alg, seed).Run(200_000); out.Result == sim.ResultDelivered {
				ok++
			}
		}
		fmt.Printf("%s: %d/20 bursts delivered\n", name, ok)
	}

	fmt.Println()
	fmt.Println("the paper showed that for oblivious routing a cyclic dependency graph")
	fmt.Println("does not imply deadlock; Duato's protocol is the adaptive analogue —")
	fmt.Println("its candidate structure is cyclic, but the acyclic escape sub-network")
	fmt.Println("keeps it deadlock-free.")
}
