// customnet shows the full API round trip on a user-defined irregular
// network: build a topology channel by channel, define an oblivious
// routing table, run the static deadlock analysis, and — when it reports a
// reachable deadlock — reproduce it in the simulator and print the
// Definition 6 wait-for cycle.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/waitfor"
)

func main() {
	// A 4-node unidirectional ring with an extra chord 0 -> 2.
	net := topology.New("chordring")
	for i := 0; i < 4; i++ {
		net.AddNode(fmt.Sprintf("n%d", i))
	}
	var ring [4]topology.ChannelID
	for i := 0; i < 4; i++ {
		ring[i] = net.AddChannel(topology.NodeID(i), topology.NodeID((i+1)%4), 0,
			fmt.Sprintf("cw%d", i))
	}
	chord := net.AddChannel(0, 2, 0, "chord")
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	// An oblivious routing table: clockwise shortest paths, except 0 -> 2
	// uses the chord.
	tab := routing.NewTable(net, "chordring-routing")
	if err := tab.FillShortest(); err != nil {
		log.Fatal(err)
	}
	tab.MustSetPath(0, 2, []topology.ChannelID{chord})

	props := routing.CheckAll(tab)
	fmt.Printf("routing properties: %s\n", props)

	rep := core.Analyze(tab, core.Options{})
	fmt.Printf("analysis: %s — %s\n", rep.Verdict, rep.Reason)
	for i, cyc := range rep.Cycles {
		fmt.Printf("  cycle %d: %d channels, %s\n", i+1, len(cyc.Cycle), cyc.Verdict)
	}

	if rep.Verdict != core.DeadlockCapable {
		return
	}
	// Reproduce the deadlock concretely. The chord closes a three-channel
	// cycle {chord, cw2, cw3}: 0->3 holds the chord waiting for cw2,
	// 2->1 holds cw2 waiting for cw3, and 3->2 holds cw3 waiting for the
	// chord.
	s := sim.New(net, sim.Config{})
	for _, pair := range [][2]topology.NodeID{{0, 3}, {2, 1}, {3, 2}} {
		s.MustAdd(sim.MessageSpec{
			Src: pair[0], Dst: pair[1], Length: 2,
			Path:  tab.Path(pair[0], pair[1]),
			Label: fmt.Sprintf("m%d->%d", pair[0], pair[1]),
		})
	}
	out := s.Run(1000)
	fmt.Printf("\nsimulating the three cycle messages simultaneously: %s after %d cycles\n",
		out.Result, s.Now())
	if d := waitfor.Find(s); d != nil {
		fmt.Printf("Definition 6 configuration: %s\n", d)
		if err := waitfor.Verify(s, d); err != nil {
			log.Fatal(err)
		}
		fmt.Println("configuration verified against the simulator state.")
	}
}
