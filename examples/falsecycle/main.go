// falsecycle walks through the paper's central example: the Figure 1
// Cyclic Dependency routing algorithm, whose channel dependency graph
// contains a cycle that can never become a deadlock — a false resource
// cycle. The example shows the cycle, the four messages that would have to
// form it, the exhaustive proof that they cannot, and the Section 6
// observation that one cycle of router clock skew changes the answer.
package main

import (
	"fmt"

	"repro/internal/cdg"
	"repro/internal/core"
	"repro/internal/mcheck"
	"repro/internal/papernets"
)

func main() {
	pn := papernets.Figure1()
	fmt.Printf("== %s: %d nodes, %d channels ==\n\n",
		pn.Name, pn.Network.NumNodes(), pn.Network.NumChannels())

	// The four exceptional messages from Src.
	fmt.Println("the four messages sharing cs = Src -> N*:")
	for _, e := range pn.Entrants {
		fmt.Printf("  %s: %d channels from Src to the cycle, then %d cycle channels to %s\n",
			e.Label, e.D, e.C, pn.Network.Node(e.Dest))
	}

	// The dependency cycle.
	g := cdg.New(pn.Alg)
	cycles, _ := g.Cycles(1)
	fmt.Printf("\nchannel dependency graph: %d dependencies, cycle of %d channels:\n  ",
		g.NumEdges(), len(cycles[0]))
	for i, c := range cycles[0] {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(pn.Network.Channel(c))
	}
	fmt.Println()

	// Exhaustive reachability: no schedule of injections and arbitration
	// outcomes deadlocks.
	res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{})
	fmt.Printf("\nexhaustive search over every injection timing and arbitration: %s (%d states)\n",
		res.Verdict, res.States)

	// The static analyzer derives the same verdict from the Section 5
	// timing theory, without searching.
	rep := core.Analyze(pn.Alg, core.Options{})
	fmt.Printf("static analyzer: %s — %s\n", rep.Verdict, rep.Reason)

	// Section 6: one stall cycle flips the verdict.
	skew := mcheck.Search(pn.Scenario, mcheck.SearchOptions{StallBudget: 1, FreezeInTransitOnly: true})
	fmt.Printf("\nwith one cycle of adversarial router skew: %s\n", skew.Verdict)
	if skew.Deadlock != nil {
		fmt.Printf("deadlock configuration: %s\n", skew.Deadlock)
	}
	fmt.Println("\nconclusion: a cycle in the channel dependency graph does not imply deadlock,")
	fmt.Println("even for oblivious routing — Theorem 1 of the paper, verified exhaustively.")
}
