// Quickstart: build a network, pick a routing algorithm, check it for
// deadlock freedom, and simulate a message through it.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// 1. A 4x4 mesh with one virtual channel per link.
	grid := topology.NewMesh([]int{4, 4}, 1)
	fmt.Printf("network: %s with %d nodes and %d channels\n",
		grid.Name(), grid.NumNodes(), grid.NumChannels())

	// 2. Dimension-order (XY) routing.
	alg := routing.DimensionOrder(grid)

	// 3. Static deadlock analysis: XY routing has an acyclic channel
	// dependency graph, so it is deadlock-free with a numbering
	// certificate.
	report := core.Analyze(alg, core.Options{})
	fmt.Printf("verdict: %s (%s)\n", report.Verdict, report.Reason)

	// 4. Simulate one 8-flit message corner to corner.
	src := grid.NodeAt([]int{0, 0})
	dst := grid.NodeAt([]int{3, 3})
	s := sim.New(grid.Network, sim.Config{})
	id, err := s.Add(sim.MessageSpec{
		Src: src, Dst: dst, Length: 8, Path: alg.Path(src, dst),
	})
	if err != nil {
		log.Fatal(err)
	}
	out := s.Run(1000)
	mv := s.Message(id)
	fmt.Printf("simulated: %s after %d cycles; message latency %d cycles (6 hops + 8 flits - 1)\n",
		out.Result, s.Now(), mv.DeliveredAt-mv.InjectedAt+1)
}
