// skewtolerance reproduces the paper's Section 6 experiment end to end:
// for the generalized networks Gen(k), it measures — by exact state-space
// search — the minimal number of adversarial router-stall cycles needed to
// turn the false resource cycle into a real deadlock, and prints the
// linear growth the paper proves.
package main

import (
	"flag"
	"fmt"

	"repro/internal/mcheck"
	"repro/internal/papernets"
)

func main() {
	maxK := flag.Int("maxk", 4, "largest k to measure")
	flag.Parse()

	fmt.Println("Gen(k): d1=d3=2, d2=d4=k+2, c_i=d_i+k, minimal message lengths")
	fmt.Println()
	fmt.Println("  k | states (budget k) | minimal stall for deadlock | paper bound")
	for k := 1; k <= *maxK; k++ {
		pn := papernets.GenK(k)
		minimal := -1
		states := 0
		for b := 0; b <= k+2; b++ {
			res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{
				StallBudget:         b,
				FreezeInTransitOnly: true,
				MaxStates:           50_000_000,
			})
			states = res.States
			if res.Verdict == mcheck.VerdictDeadlock {
				minimal = b
				break
			}
		}
		fmt.Printf("  %d | %17d | %26d | >= %d\n", k, states, minimal, k)
	}
	fmt.Println()
	fmt.Println("the minimal stall grows linearly with k: the construction tolerates")
	fmt.Println("arbitrary clock skew below k cycles, so the unreachable cycle does not")
	fmt.Println("depend on tightly synchronous routers (Section 6).")
}
