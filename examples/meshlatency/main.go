// meshlatency compares two deadlock-free oblivious routing algorithms —
// dimension-order (XY) and the negative-first turn model — on an 8x8 mesh
// under increasing uniform and transpose load, printing a latency/
// throughput table per offered rate.
package main

import (
	"fmt"
	"log"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	grid := topology.NewMesh([]int{8, 8}, 1)
	algs := []routing.Algorithm{
		routing.DimensionOrder(grid),
		routing.NegativeFirst(grid),
	}
	patterns := []struct {
		name string
		pat  traffic.Pattern
	}{
		{"uniform", traffic.Uniform(grid.NumNodes())},
		{"transpose", traffic.Transpose(grid)},
	}
	rates := []float64{0.005, 0.01, 0.02, 0.04}

	fmt.Println("8x8 mesh, 8-flit messages, 300-cycle injection window")
	fmt.Printf("%-10s %-26s %-8s %-10s %-10s %-12s\n",
		"pattern", "routing", "rate", "avg lat", "max lat", "flits/cycle")
	for _, p := range patterns {
		for _, alg := range algs {
			for _, rate := range rates {
				w := traffic.Workload{
					Alg: alg, Pattern: p.pat, Rate: rate,
					Length: 8, Duration: 300, Seed: 99,
				}
				stats, out, err := w.Run(sim.Config{}, 1_000_000)
				if err != nil {
					log.Fatal(err)
				}
				if out.Result != sim.ResultDelivered {
					fmt.Printf("%-10s %-26s %-8.3f %s\n", p.name, alg.Name(), rate, out.Result)
					continue
				}
				fmt.Printf("%-10s %-26s %-8.3f %-10.1f %-10d %-12.3f\n",
					p.name, alg.Name(), rate, stats.AvgLatency, stats.MaxLatency, stats.Throughput)
			}
		}
	}
	fmt.Println("\nboth algorithms are deadlock-free (acyclic CDGs, Dally-Seitz numbering);")
	fmt.Println("they concentrate load differently, so their saturation points diverge as")
	fmt.Println("the offered rate grows — compare the latency columns at the highest rate.")
}
