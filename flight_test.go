package repro

// End-to-end exercise of the flight recorder on the paper's canonical
// true deadlock: Figure 2, the modified cyclic configuration whose
// resource cycle is real (Figure 1's false resource cycle provably never
// closes under fair arbitration — that is Theorem 1 — so the deadlocking
// sibling scenario is the golden fixture). The dump must contain
// retained telemetry frames, the final wait-for graph with the closed
// cycle, and a congestion heatmap whose hottest channel lies on the
// deadlock cycle — and the whole bundle must be byte-deterministic
// across identical runs.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obsv/telemetry"
	"repro/internal/papernets"
	"repro/internal/sim"
)

// runFigure2Deadlock drives one instrumented Figure-2 run into its
// deadlock and dumps the flight bundle into dir.
func runFigure2Deadlock(t *testing.T, dir string) (*telemetry.FlightRecorder, *telemetry.Collector) {
	t.Helper()
	pn := papernets.Figure2()
	s := pn.Scenario.NewSim()
	col := telemetry.NewCollector(pn.Network.NumChannels(), telemetry.Config{Stride: 1, FrameEvery: 4, Ring: 16})
	rec := telemetry.NewFlightRecorder(pn.Network, 0, col)
	s.SetTelemetry(col)
	s.SetTracer(rec)
	out := s.Run(10_000)
	if out.Result != sim.ResultDeadlock {
		t.Fatalf("result = %s; the Figure 2 configuration must deadlock", out.Result)
	}
	if err := rec.Dump(dir, ""); err != nil {
		t.Fatal(err)
	}
	return rec, col
}

func TestFlightRecorderFigure2DeadlockDump(t *testing.T) {
	dir := t.TempDir()
	rec, col := runFigure2Deadlock(t, dir)

	// flight.jsonl: header with the deadlock reason and at least one
	// retained telemetry frame.
	jsonl, err := os.ReadFile(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	head := string(jsonl[:bytes.IndexByte(jsonl, '\n')])
	if !strings.Contains(head, `"reason":"deadlock"`) {
		t.Fatalf("header reason: %s", head)
	}
	if col.FramesClosed() < 1 || !bytes.Contains(jsonl, []byte(`"frame":0`)) {
		t.Fatalf("bundle has no telemetry frames (closed %d):\n%s", col.FramesClosed(), head)
	}
	if !bytes.Contains(jsonl, []byte(`"k":"deadlock"`)) {
		t.Fatal("event ring lost the deadlock certificate")
	}

	// waitfor.dot: the final graph must show a closed (red) cycle.
	dot, err := os.ReadFile(filepath.Join(dir, "waitfor.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(dot, []byte("color=red")) {
		t.Fatalf("wait-for graph has no closed cycle:\n%s", dot)
	}
	cycleChs := rec.CycleChannels()
	if len(cycleChs) == 0 {
		t.Fatal("recorder tracked no deadlock-cycle channels")
	}

	// heatmap.svg: present, and the hottest channel lies on the cycle —
	// the channels both held and waited on dominate the congestion
	// totals once the network wedges.
	if _, err := os.Stat(filepath.Join(dir, "heatmap.svg")); err != nil {
		t.Fatal(err)
	}
	hot, _, ok := col.Hottest()
	if !ok {
		t.Fatal("collector sampled no congestion")
	}
	onCycle := false
	for _, ch := range cycleChs {
		if int(ch) == hot {
			onCycle = true
		}
	}
	if !onCycle {
		t.Fatalf("hottest channel c%d not on the deadlock cycle %v", hot, cycleChs)
	}
}

// TestFlightRecorderDumpDeterministic pins the bundle bytes across two
// identical runs: frames, events, graph and heatmap carry only logical
// quantities, so nothing may differ.
func TestFlightRecorderDumpDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	runFigure2Deadlock(t, dirA)
	runFigure2Deadlock(t, dirB)
	for _, name := range []string{"flight.jsonl", "waitfor.dot", "heatmap.svg"} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between identical runs", name)
		}
	}
}

// TestTelemetryFramesDeterministic pins the live frame stream itself:
// two identical simulations publishing through OnFrame must render
// byte-identical JSON sequences (the property the loadtest -workers
// byte-stability smoke relies on). Figure 1's full false-cycle run is
// the driver: it stresses every frame field (injection, contention,
// drain) and, per Theorem 1, delivers.
func TestTelemetryFramesDeterministic(t *testing.T) {
	drive := func() []byte {
		pn := papernets.Figure1()
		s := pn.Scenario.NewSim()
		col := telemetry.NewCollector(pn.Network.NumChannels(), telemetry.Config{Stride: 2, FrameEvery: 4, Ring: 8})
		var out []byte
		col.OnFrame = func(f *telemetry.Frame) {
			out = f.AppendJSON(out)
			out = append(out, '\n')
		}
		s.SetTelemetry(col)
		if res := s.Run(10_000); res.Result != sim.ResultDelivered {
			t.Fatalf("figure1 must deliver, got %s", res.Result)
		}
		col.Flush()
		return out
	}
	a, b := drive(), drive()
	if len(a) == 0 {
		t.Fatal("no frames published")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("frame streams differ:\n%s\n---\n%s", a, b)
	}
}

// TestTelemetryAdaptiveFramesDeterministic extends the frame-stream pin
// to adaptive sampling: the stride schedule is a pure function of
// sampled logical state, so two identical runs must publish
// byte-identical streams even while the stride itself moves — and the
// stream must record that movement (a trajectory that never leaves the
// base stride would mean the adaptive path went unexercised).
func TestTelemetryAdaptiveFramesDeterministic(t *testing.T) {
	drive := func() ([]byte, map[int]bool) {
		pn := papernets.Figure1()
		s := pn.Scenario.NewSim()
		col := telemetry.NewCollector(pn.Network.NumChannels(), telemetry.Config{
			Stride: 1, FrameEvery: 4, Ring: 8,
			Adaptive: true, MaxStride: 8, WindowBytes: 16 << 10,
		})
		var out []byte
		strides := make(map[int]bool)
		col.OnFrame = func(f *telemetry.Frame) {
			strides[f.Stride] = true
			out = f.AppendJSON(out)
			out = append(out, '\n')
		}
		s.SetTelemetry(col)
		if res := s.Run(10_000); res.Result != sim.ResultDelivered {
			t.Fatalf("figure1 must deliver, got %s", res.Result)
		}
		col.Flush()
		return out, strides
	}
	a, stridesA := drive()
	b, _ := drive()
	if len(a) == 0 {
		t.Fatal("no frames published")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("adaptive frame streams differ:\n%s\n---\n%s", a, b)
	}
	if len(stridesA) < 2 {
		t.Fatalf("stride never moved (trajectory %v); the adaptive policy went unexercised", stridesA)
	}
	if !bytes.Contains(a, []byte(`"stride":`)) {
		t.Fatal("frame JSON does not record the stride trajectory")
	}
}
