package repro

// Guards for the arena-based simulator hot path: steady-state stepping
// must not allocate at all with tracing off, and must stay within a fixed
// small budget with a tracer attached. These pin the tentpole property of
// the hot-path refactor — every per-cycle structure (request lists,
// freeing masks, grant table, candidate buffers) lives in Sim-owned
// scratch arenas reset by epoch counters, never reallocated.

import (
	"testing"

	"repro/internal/obsv"
	"repro/internal/obsv/telemetry"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// crossTrafficSim builds a 16x16 mesh under DOR with eight long
// corner-crossing messages, stepped past injection so the worms are in
// flight and every phase of step() (prediction, arbitration, movement,
// release) has work to do.
func crossTrafficSim(length int) *sim.Sim {
	g := topology.NewMesh([]int{16, 16}, 1)
	alg := routing.DimensionOrder(g)
	s := sim.New(g.Network, sim.Config{})
	for i := 0; i < 8; i++ {
		src := g.NodeAt([]int{2 * i, 0})
		dst := g.NodeAt([]int{15 - 2*i, 15})
		s.MustAdd(sim.MessageSpec{Src: src, Dst: dst, Length: length, Path: alg.Path(src, dst)})
	}
	for i := 0; i < 64; i++ {
		s.Step()
	}
	return s
}

// TestStepZeroAllocSteadyState pins Step at exactly 0 allocs/op with no
// tracer: the acceptance bar of the arena refactor. Message length is
// chosen so the worms stay in flight for every measured iteration.
func TestStepZeroAllocSteadyState(t *testing.T) {
	s := crossTrafficSim(4096)
	if n := testing.AllocsPerRun(200, func() {
		s.Step()
	}); n != 0 {
		t.Fatalf("steady-state Step allocates %v allocs/op; the hot path must stay on the scratch arenas", n)
	}
	if s.AllTerminal() {
		t.Fatal("test bug: traffic drained before the measurement ended")
	}
}

// TestStepTelemetryZeroAllocSteadyState pins the sampled hot path at the
// same 0 allocs/op as the unobserved one. The stride is set low enough
// that every measured window both takes samples and closes frames, so
// the accumulator scan, FinishSample, and the frame-ring copy are all
// exercised — none of them may touch the heap.
func TestStepTelemetryZeroAllocSteadyState(t *testing.T) {
	s := crossTrafficSim(4096)
	col := telemetry.NewCollector(s.Network().NumChannels(), telemetry.Config{Stride: 2, FrameEvery: 4, Ring: 8})
	s.SetTelemetry(col)
	if n := testing.AllocsPerRun(200, func() {
		s.Step()
	}); n != 0 {
		t.Fatalf("sampled Step allocates %v allocs/op; telemetry must stay on the collector's fixed arrays", n)
	}
	if col.Samples() == 0 {
		t.Fatal("collector took no samples; the guard measured an unsampled path")
	}
	if col.FramesClosed() == 0 {
		t.Fatal("collector closed no frames; the guard never exercised the ring copy")
	}
}

// TestStepAdaptiveTelemetryZeroAllocSteadyState pins the adaptive-stride
// sampled hot path — stride adaptation in FinishSample plus the
// delta-compressed window appends and their whole-block evictions — at
// the same 0 allocs/op as the fixed-stride path. The window budget is
// tiny so the warmup drives it past its first eviction; the measured
// region then exercises free-list buffer recycling, not first-touch
// growth.
func TestStepAdaptiveTelemetryZeroAllocSteadyState(t *testing.T) {
	// Conflict-free row-parallel worms: each stays in its own mesh row
	// under DOR, so no sample ever sees a blocked dependency and the
	// quiet-streak backoff actually fires (cross traffic would pin the
	// stride at its base).
	g := topology.NewMesh([]int{16, 16}, 1)
	alg := routing.DimensionOrder(g)
	s := sim.New(g.Network, sim.Config{})
	for i := 0; i < 4; i++ {
		src := g.NodeAt([]int{4 * i, 0})
		dst := g.NodeAt([]int{4 * i, 15})
		s.MustAdd(sim.MessageSpec{Src: src, Dst: dst, Length: 8192, Path: alg.Path(src, dst)})
	}
	col := telemetry.NewCollector(s.Network().NumChannels(), telemetry.Config{
		Stride: 1, FrameEvery: 2, Ring: 4,
		Adaptive: true, MaxStride: 4, WindowBytes: 2 << 10,
	})
	s.SetTelemetry(col)
	for i := 0; i < 2000; i++ {
		s.Step()
	}
	if st := col.Window().Stats(); st.Dropped == 0 {
		t.Fatalf("warmup never evicted a window block (%+v); the guard would miss the recycling path", st)
	}
	if col.CurrentStride() <= col.Stride() {
		t.Fatalf("stride never adapted (still %d); the guard would measure the fixed-stride path", col.CurrentStride())
	}
	if n := testing.AllocsPerRun(200, func() {
		s.Step()
	}); n != 0 {
		t.Fatalf("adaptive sampled Step allocates %v allocs/op; adaptation and the window must stay on fixed arrays", n)
	}
	if s.AllTerminal() {
		t.Fatal("test bug: traffic drained before the measurement ended")
	}
}

// TestPooledRunZeroAllocSteadyState pins the full pooled cycle the search
// engine and traffic sweeps rely on: CopyFrom a prototype and Run to
// completion, allocation-free once the pool instance is warm.
func TestPooledRunZeroAllocSteadyState(t *testing.T) {
	g := topology.NewMesh([]int{16, 16}, 1)
	alg := routing.DimensionOrder(g)
	proto := sim.New(g.Network, sim.Config{})
	for i := 0; i < 8; i++ {
		src := g.NodeAt([]int{2 * i, 0})
		dst := g.NodeAt([]int{15 - 2*i, 15})
		proto.MustAdd(sim.MessageSpec{Src: src, Dst: dst, Length: 64, Path: alg.Path(src, dst)})
	}
	s := sim.New(g.Network, sim.Config{})
	s.CopyFrom(proto)
	if out := s.Run(10_000); out.Result != sim.ResultDelivered {
		t.Fatalf("warmup run: %v", out.Result)
	}
	if n := testing.AllocsPerRun(20, func() {
		s.CopyFrom(proto)
		if out := s.Run(10_000); out.Result != sim.ResultDelivered {
			t.Fatalf("run: %v", out.Result)
		}
	}); n != 0 {
		t.Fatalf("pooled CopyFrom+Run allocates %v allocs/op in steady state", n)
	}
}

// TestAddResetZeroAllocSteadyState pins the traffic-engine ingestion path:
// recycling a simulator (Reset) and re-adding a message set reuses parked
// message slots and the path-validation bitset — no per-call maps.
func TestAddResetZeroAllocSteadyState(t *testing.T) {
	g := topology.NewMesh([]int{8, 8}, 1)
	alg := routing.DimensionOrder(g)
	specs := make([]sim.MessageSpec, 0, 8)
	for i := 0; i < 8; i++ {
		src := g.NodeAt([]int{i, 0})
		dst := g.NodeAt([]int{7 - i, 7})
		specs = append(specs, sim.MessageSpec{Src: src, Dst: dst, Length: 8, Path: alg.Path(src, dst)})
	}
	s := sim.New(g.Network, sim.Config{})
	reload := func() {
		s.Reset()
		for _, m := range specs {
			s.MustAdd(m)
		}
	}
	reload() // warm the parked slots
	if n := testing.AllocsPerRun(100, reload); n != 0 {
		t.Fatalf("Reset+Add allocates %v allocs/op in steady state; path validation or slot reuse regressed", n)
	}
}

// countingTracer is the cheapest possible sink: it proves the traced path
// itself (event construction and dispatch) stays allocation-bounded, as
// distinct from what a real sink does with the events.
type countingTracer struct{ events int }

func (c *countingTracer) Event(obsv.Event) { c.events++ }

// TestStepTracedAllocBounded bounds the traced hot path: with a tracer
// attached, Step may allocate only what event delivery itself needs. The
// budget is deliberately loose against the untraced 0 but tight against
// per-phase map churn creeping back in under cover of tracing.
func TestStepTracedAllocBounded(t *testing.T) {
	s := crossTrafficSim(4096)
	tr := &countingTracer{}
	s.SetTracer(tr)
	n := testing.AllocsPerRun(200, func() {
		s.Step()
	})
	const budget = 8
	if n > budget {
		t.Fatalf("traced Step allocates %v allocs/op; budget %d", n, budget)
	}
	if tr.events == 0 {
		t.Fatal("tracer saw no events; the guard measured an idle path")
	}
}
