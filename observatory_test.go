package repro

// End-to-end exercise of the run observatory: a live Gen(4) search
// observed over HTTP while it runs — /progress events with monotonically
// non-decreasing state counts, a /metrics scrape mid-run, a healthy
// /healthz — and a run manifest on disk that matches the search's final
// result field for field.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/mcheck"
	"repro/internal/obsv"
	"repro/internal/obsv/manifest"
	"repro/internal/obsv/serve"
	"repro/internal/papernets"
)

func TestObservatoryLiveSearch(t *testing.T) {
	reg := obsv.NewRegistry()
	srv := serve.New(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pn := papernets.GenK(4)
	const name = "gen4 stall4"

	// Subscribe to the SSE stream before the search starts so no event is
	// missed.
	resp, err := http.Get(ts.URL + "/progress?stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan mcheck.SearchResult, 1)
	go func() {
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{
			StallBudget:         4,
			FreezeInTransitOnly: true,
			Reduction:           mcheck.RedAll,
			Metrics:             reg,
			ProgressEvery:       time.Nanosecond,
			Progress: func(p mcheck.ProgressInfo) {
				srv.Hub().Publish(serve.Snapshot{
					Source: "search", Name: name,
					Level: p.Level, Frontier: p.Frontier, States: p.States,
					StatesPerSec: int64(p.StatesPerSec), ElapsedMS: p.Elapsed.Milliseconds(),
				})
			},
		})
		srv.Hub().Publish(serve.Snapshot{
			Source: "search", Name: name, States: res.States,
			Done: true, Verdict: res.Verdict.String(),
		})
		done <- res
	}()

	// Drain the stream until the Done event, asserting monotonicity.
	var events []serve.Snapshot
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(60 * time.Second)
	for sc.Scan() && time.Now().Before(deadline) {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var snap serve.Snapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
			t.Fatalf("bad SSE event %q: %v", line, err)
		}
		events = append(events, snap)
		if snap.Done {
			break
		}
	}
	res := <-done

	if res.Verdict != mcheck.VerdictDeadlock {
		t.Fatalf("gen4 stall4 verdict = %v, want deadlock", res.Verdict)
	}
	if len(events) < 2 {
		t.Fatalf("observed %d progress events, want at least a live one plus Done", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].States < events[i-1].States {
			t.Fatalf("visited count regressed on the stream: event %d = %d, event %d = %d",
				i-1, events[i-1].States, i, events[i].States)
		}
	}
	final := events[len(events)-1]
	if !final.Done || final.Verdict != res.Verdict.String() || final.States != res.States {
		t.Errorf("final stream event %+v does not match result %v/%d", final, res.Verdict, res.States)
	}

	// /metrics after the search: the search gauges must be present and
	// promtool-shaped (HELP and TYPE per family).
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, mresp)
	for _, want := range []string{
		"# HELP mcheck_states ",
		"# TYPE mcheck_states gauge",
		"mcheck_states " + itoa(res.States),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /healthz still answers.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hbody := readAll(t, hresp); !strings.Contains(hbody, `"status":"ok"`) {
		t.Errorf("healthz = %s", hbody)
	}

	// Manifest round-trip: the on-disk document matches the SearchResult.
	path := filepath.Join(t.TempDir(), "manifest.json")
	b := manifest.NewBuilder(path, "observatory_test", nil)
	run := cli.SearchRun(name, pn.Scenario.Net, res)
	run.Scenario = pn.Scenario.Name
	b.AddRun(run)
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	m, err := manifest.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 1 {
		t.Fatalf("manifest runs = %d", len(m.Runs))
	}
	got := m.Runs[0]
	if got.Verdict != res.Verdict.String() || got.States != res.States {
		t.Errorf("manifest verdict/states = %s/%d, result = %v/%d", got.Verdict, got.States, res.Verdict, res.States)
	}
	if got.Reduction != res.Reduction.String() || got.StatesPruned != res.StatesPruned {
		t.Errorf("manifest reduction stats = %s/%d, result = %v/%d",
			got.Reduction, got.StatesPruned, res.Reduction, res.StatesPruned)
	}
	if want := manifest.ReductionRatio(res.States, res.StatesPruned); got.ReductionRatio != want {
		t.Errorf("manifest reduction ratio = %v, want %v", got.ReductionRatio, want)
	}
	if got.TopologyHash == "" || got.Workers != res.Workers {
		t.Errorf("manifest run = %+v", got)
	}
	if m.WallTimeMS < 0 || m.Command != "observatory_test" {
		t.Errorf("manifest header = %+v", m)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func itoa(v int) string {
	var b []byte
	if v == 0 {
		return "0"
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
