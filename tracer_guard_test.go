package repro

// Guard for the observability layer's zero-overhead contract: with no
// tracer attached (the default), the exhaustive search must stay on the
// allocation profile recorded in BENCH_mcheck.json. Every emission site
// in internal/sim and internal/mcheck sits behind an `if tracer != nil`
// check, so a regression here means someone hoisted work out of a guard.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/mcheck"
	"repro/internal/papernets"
	"repro/internal/sim"
)

// benchBaseline mirrors the records of BENCH_mcheck.json.
type benchBaseline struct {
	Benchmarks []struct {
		Name        string `json:"name"`
		NsPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		States      int    `json:"states"`
	} `json:"benchmarks"`
}

func loadBaseline(t *testing.T, name string) (allocs int64, states int) {
	t.Helper()
	raw, err := os.ReadFile("BENCH_mcheck.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var doc benchBaseline
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for _, b := range doc.Benchmarks {
		if b.Name == name {
			return b.AllocsPerOp, b.States
		}
	}
	t.Fatalf("baseline: no record %q", name)
	return 0, 0
}

// checkFastPath benchmarks fn (a search with a nil tracer) and asserts
// it stays within 5% of the recorded allocation baseline and reproduces
// the exact deterministic state count. Allocation counts are nearly
// deterministic under Parallelism=1 — unlike wall time, which this guard
// deliberately does not assert, since the recorded ns/op is
// machine-specific.
func checkFastPath(t *testing.T, baselineName string, wantStates int, fn func(b *testing.B) int) {
	t.Helper()
	baseAllocs, baseStates := loadBaseline(t, baselineName)
	if baseStates != 0 && baseStates != wantStates {
		t.Fatalf("%s: baseline records %d states, test expects %d", baselineName, baseStates, wantStates)
	}
	gotStates := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gotStates = fn(b)
		}
	})
	if gotStates != wantStates {
		t.Errorf("%s: searched %d states, want %d (determinism broken)", baselineName, gotStates, wantStates)
	}
	limit := baseAllocs + baseAllocs/20 // 5% slack over the recorded baseline
	if got := r.AllocsPerOp(); got > limit {
		t.Errorf("%s: %d allocs/op with tracing disabled; baseline %d (+5%% = %d) — an obsv emission site is allocating outside its nil-tracer guard",
			baselineName, got, baseAllocs, limit)
	} else {
		t.Logf("%s: %d allocs/op (baseline %d, limit %d), %d ns/op", baselineName, got, baseAllocs, limit, r.NsPerOp())
	}
}

// TestDisabledTracerFastPath_E1 runs the Theorem 1 search (Figure 1)
// with the zero-value SearchOptions — nil Tracer, nil Metrics, nil
// Progress — and holds it to the pre-observability allocation budget.
func TestDisabledTracerFastPath_E1(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark-backed guard in -short mode")
	}
	pn := papernets.Figure1()
	checkFastPath(t, "E1_Figure1_Search", 2996, func(b *testing.B) int {
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{Parallelism: 1})
		if res.Verdict != mcheck.VerdictNoDeadlock {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		return res.States
	})
}

// TestDisabledTracerFastPath_E1_Reduced holds the reduced search path to
// the same contract: reductions on (partial-order filters, canonical
// encoding), tracer and metrics nil — the per-state pruning and
// canonicalization work must stay on enumerator/worker scratch, not
// allocate per state.
func TestDisabledTracerFastPath_E1_Reduced(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark-backed guard in -short mode")
	}
	pn := papernets.Figure1()
	checkFastPath(t, "E1_Figure1_Search_Reduced", 818, func(b *testing.B) int {
		res := mcheck.Search(pn.Scenario, mcheck.SearchOptions{Parallelism: 1, Reduction: mcheck.RedAll})
		if res.Verdict != mcheck.VerdictNoDeadlock {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		if res.Reduction != mcheck.RedAll {
			b.Fatalf("reduction = %v", res.Reduction)
		}
		return res.States
	})
}

// TestDisabledTracerFastPath_E5 does the same over all six Figure 3
// searches (the heaviest tier-1 search load).
func TestDisabledTracerFastPath_E5(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark-backed guard in -short mode")
	}
	scenarios := make([]sim.Scenario, 0, 6)
	for l := byte('a'); l <= 'f'; l++ {
		scenarios = append(scenarios, papernets.Figure3(l).Scenario)
	}
	checkFastPath(t, "E5_Figure3_SearchAll", 8743, func(b *testing.B) int {
		states := 0
		for _, sc := range scenarios {
			states += mcheck.Search(sc, mcheck.SearchOptions{Parallelism: 1}).States
		}
		return states
	})
}
