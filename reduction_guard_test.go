package repro

// Guard for the state-space reduction's headline claim: on Gen(4) at its
// minimal deadlocking stall budget, the combined partial-order + symmetry
// reduction must keep the explored state count exactly at the committed
// baseline (it is deterministic) and at least 3x below the unreduced
// search recorded alongside it. Runs in short mode — the reduced search
// is the cheap one; the 3x denominator comes from the baseline file, not
// a live unreduced run.

import (
	"testing"

	"repro/internal/mcheck"
	"repro/internal/papernets"
)

func TestReductionGuard_Gen4(t *testing.T) {
	_, redStates := loadBaseline(t, "Gen4_Stall4_Reduced")
	_, unredStates := loadBaseline(t, "Gen4_Stall4")
	if redStates == 0 || unredStates == 0 {
		t.Fatal("baseline rows missing state counts; regenerate BENCH_mcheck.json with cmd/benchjson")
	}

	res := mcheck.Search(papernets.GenK(4).Scenario, mcheck.SearchOptions{
		StallBudget:         4,
		FreezeInTransitOnly: true,
		Reduction:           mcheck.RedAll,
	})
	if res.Verdict != mcheck.VerdictDeadlock {
		t.Fatalf("verdict = %v, want deadlock", res.Verdict)
	}
	if res.Reduction != mcheck.RedAll {
		t.Fatalf("reduction = %v, want %v (gating cleared it?)", res.Reduction, mcheck.RedAll)
	}
	if res.States != redStates {
		t.Errorf("reduced Gen(4) explored %d states; baseline records %d — "+
			"if the reduction intentionally changed, regenerate BENCH_mcheck.json with cmd/benchjson",
			res.States, redStates)
	}
	if unredStates < 3*res.States {
		t.Errorf("reduction ratio %d/%d below the 3x floor", unredStates, res.States)
	}
}
